"""Long-lived cluster worker: one shard of a distributed run, over TCP.

A worker is a small server speaking the :mod:`repro.cluster.protocol`
frames.  Each coordinator connection carries one *session*:

1. **Handshake** — the coordinator's ``hello`` names the shard (index,
   chunk/vertex range), carries the run's seed entropy, the base
   partitioner spec and the scoring profile; the worker acknowledges
   with its protocol version and its own ``--seed`` token, so a
   mis-wired cluster fails at the handshake rather than mid-round.
2. **Ingest** — the shard's data arrives straight off the socket and is
   never materialised as a file: ``ship="chunks"`` sends decoded CSR
   chunk frames (wrapped in a :class:`_ShardSlice` facade), while
   ``ship="text"`` streams raw text blocks into the byte-source readers
   (:func:`~repro.streaming.reader.stream_hmetis` /
   :func:`~repro.streaming.reader.stream_matrix_market`), which spill
   to worker-local temp storage exactly as a local ingest would.
3. **Rounds** — the worker drives the *same*
   :func:`~repro.streaming.sharded.shard_stream_task` generator the
   forked path runs, answering ``round`` frames until ``stop``; the
   barrier lives coordinator-side, mirroring
   :class:`~repro.engine.parallel.ShardRounds`.

After a session the worker returns to its accept loop for the next
coordinator (or a ``shutdown`` frame).  Every significant event is
emitted as a JSONL line — the experiment harness tails these — and the
``listening`` line on stdout doubles as the readiness signal.
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import time

import numpy as np

import hmac

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    ConnectionClosedError,
    ProtocolError,
    base_from_spec,
    fresh_nonce,
    hmac_proof,
    negotiate_version,
    recv_message,
    send_message,
)
from repro.streaming.reader import ChunkStream, VertexChunk
from repro.streaming.sharded import shard_stream_task

__all__ = ["ClusterWorker"]


class _Shutdown(Exception):
    """Raised internally when a peer sends the shutdown frame."""


class _ShardSlice(ChunkStream):
    """Facade over socket-shipped chunks covering chunk range [lo, hi).

    Presents exactly the :class:`ChunkStream` surface
    :func:`shard_stream_task` touches — ``num_vertices`` plus
    ``iter_range`` over the shard's own range, with global vertex ids
    intact — without ever holding the rest of the stream.
    """

    name = "shard-slice"

    def __init__(
        self, chunks: "list[VertexChunk]", lo: int, num_vertices: int
    ) -> None:
        self._chunks = chunks
        self._lo = lo
        self.num_vertices = int(num_vertices)

    def iter_range(self, lo: int, hi: int):
        if lo < self._lo or hi > self._lo + len(self._chunks):
            raise ValueError(
                f"chunk range [{lo}, {hi}) outside shipped shard "
                f"[{self._lo}, {self._lo + len(self._chunks)})"
            )
        return iter(self._chunks[lo - self._lo : hi - self._lo])


class ClusterWorker:
    """Serve shards of distributed partitioning runs on one TCP port.

    Parameters
    ----------
    host, port:
        bind address; ``port=0`` picks an ephemeral port (reported by
        the ``listening`` event and :attr:`port`).
    seed:
        this worker's seed token, echoed in the handshake ack and the
        logs — the harness derives one per worker so runs are
        attributable; shard determinism itself comes from the
        coordinator's shipped entropy.
    max_frame:
        per-frame payload bound passed to the protocol receiver.
    log_path:
        JSONL event log destination (appended); events always also go
        to stdout.
    psk:
        pre-shared key bytes.  When set, every session must complete
        the mutual HMAC challenge (coordinators without the key get a
        stable ``auth_required``/``auth_failed`` error frame and are
        dropped before any shard data flows).
    max_version:
        highest protocol version this worker negotiates (default: the
        build's own).  Clamping to 1 makes a current worker behave as
        a v1 peer — the compatibility tests use it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        seed: "int | None" = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        log_path=None,
        psk: "bytes | None" = None,
        max_version: int = PROTOCOL_VERSION,
    ) -> None:
        if not 1 <= int(max_version) <= PROTOCOL_VERSION:
            raise ValueError(
                f"max_version must be in [1, {PROTOCOL_VERSION}], "
                f"got {max_version}"
            )
        self.host = host
        self.port = int(port)
        self.seed = seed
        self.max_frame = int(max_frame)
        self.log_path = log_path
        self.psk = bytes(psk) if psk is not None else None
        self.max_version = int(max_version)
        self._server: "socket.socket | None" = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _log(self, event: str, **fields) -> None:
        line = json.dumps(
            {"event": event, "t": time.time(), "port": self.port, **fields},
            separators=(",", ":"),
        )
        print(line, flush=True)
        if self.log_path is not None:
            with open(self.log_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    # ------------------------------------------------------------------
    def bind(self) -> int:
        """Bind and listen; returns the bound port."""
        if self._server is not None:
            return self.port
        srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        srv.bind((self.host, self.port))
        srv.listen(4)
        # Accept wakes up periodically to observe stop().
        srv.settimeout(0.2)
        self._server = srv
        self.port = srv.getsockname()[1]
        return self.port

    def serve_forever(self) -> None:
        """Accept coordinator sessions until ``shutdown`` or :meth:`stop`."""
        self.bind()
        self._log("listening", host=self.host, seed=self.seed)
        try:
            while not self._stop.is_set():
                try:
                    conn, addr = self._server.accept()
                except socket.timeout:
                    continue
                try:
                    self._serve_connection(conn, addr)
                except _Shutdown:
                    self._log("shutdown", peer=list(addr))
                    return
                finally:
                    conn.close()
        finally:
            self._server.close()
            self._server = None
            self._log("stopped")

    def stop(self) -> None:
        """Ask the accept loop to exit (thread-safe, idempotent)."""
        self._stop.set()

    def start_in_thread(self) -> threading.Thread:
        """Bind now, serve in a daemon thread (for tests and the CLI)."""
        self.bind()
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    # ------------------------------------------------------------------
    def _serve_connection(self, conn: socket.socket, addr) -> None:
        self._log("connected", peer=list(addr))
        while True:
            try:
                msg, _ = recv_message(conn, max_frame=self.max_frame)
            except ConnectionClosedError:
                return  # coordinator hung up between sessions: fine
            except ProtocolError as exc:
                # Bad magic/version/size/truncation: report (best
                # effort), drop the connection — it is mid-frame and
                # unrecoverable — and go back to accepting.
                self._log("protocol_error", error=str(exc))
                try:
                    # v1 framing: pre-negotiation frames must be
                    # readable by any peer.
                    send_message(
                        conn,
                        {"type": "error", "error": str(exc)},
                        version=1,
                    )
                except OSError:
                    pass
                return
            kind = msg.get("type")
            if kind == "shutdown":
                try:
                    send_message(conn, {"type": "bye"}, version=1)
                except OSError:
                    pass
                raise _Shutdown
            if kind != "hello":
                send_message(
                    conn,
                    {"type": "error", "error": f"expected hello, got {kind!r}"},
                    version=1,
                )
                return
            try:
                self._run_session(conn, msg)
            except (ConnectionClosedError, OSError) as exc:
                # Coordinator died mid-session; the shard state is
                # worthless without it — log and wait for the next one.
                self._log("session_aborted", error=str(exc))
                return
            except ProtocolError as exc:
                self._log("protocol_error", error=str(exc))
                return
            except Exception as exc:  # surface shard crashes to the peer
                self._log("session_error", error=repr(exc))
                try:
                    send_message(
                        conn,
                        {"type": "error", "error": repr(exc)},
                        version=1,
                    )
                except OSError:
                    pass
                return

    # ------------------------------------------------------------------
    def _ingest(self, conn: socket.socket, hello: dict):
        """Receive the shard's data; returns a stream facade."""
        ship = hello["ship"]
        if ship == "chunks":
            chunks: "list[VertexChunk]" = []
            pins = 0
            while True:
                msg, _ = recv_message(conn, max_frame=self.max_frame)
                if msg["type"] == "ingest_done":
                    break
                if msg["type"] != "chunk":
                    raise ProtocolError(
                        f"expected chunk frame, got {msg['type']!r}"
                    )
                chunks.append(
                    VertexChunk(
                        start=msg["start"],
                        stop=msg["stop"],
                        vertex_ptr=msg["vertex_ptr"],
                        vertex_edges=msg["vertex_edges"],
                        vertex_weights=msg["vertex_weights"],
                    )
                )
                pins += int(chunks[-1].vertex_edges.size)
            self._log(
                "ingested", mode="chunks", chunks=len(chunks), pins=pins
            )
            return _ShardSlice(chunks, hello["lo"], hello["num_vertices"])
        if ship == "text":
            done: dict = {}

            def blocks():
                while True:
                    msg, _ = recv_message(conn, max_frame=self.max_frame)
                    if msg["type"] == "ingest_done":
                        done.update(msg)
                        return
                    if msg["type"] != "blocks":
                        raise ProtocolError(
                            f"expected blocks frame, got {msg['type']!r}"
                        )
                    yield msg["data"]

            from repro.streaming.reader import (
                stream_hmetis,
                stream_matrix_market,
            )

            source = blocks()
            fmt = hello["text_format"]
            if fmt == "hmetis":
                stream = stream_hmetis(
                    source, chunk_size=hello["chunk_size"], name="cluster"
                )
            elif fmt == "mm":
                stream = stream_matrix_market(
                    source,
                    model=hello["text_model"],
                    chunk_size=hello["chunk_size"],
                    name="cluster",
                )
            else:
                raise ProtocolError(f"unknown text format {fmt!r}")
            for _ in source:  # drain to the ingest_done terminator
                pass
            self._log(
                "ingested",
                mode="text",
                format=fmt,
                vertices=stream.num_vertices,
                pins=stream.num_pins,
            )
            return stream
        raise ProtocolError(f"unknown ship mode {ship!r}")

    def _refuse(self, conn: socket.socket, code: str, error: str) -> None:
        """Send a stable coded error frame, then abort the session."""
        self._log("auth_refused", code=code, error=error)
        try:
            send_message(
                conn,
                {"type": "error", "code": code, "error": error},
                version=1,
            )
        except OSError:
            pass
        raise ProtocolError(f"{code}: {error}")

    def _authenticate(self, conn: socket.socket, hello: dict) -> None:
        """Mutual PSK challenge-response (v1-framed, pre-negotiation).

        The worker proves knowledge of the key first (its challenge
        carries the proof over both nonces), then requires the
        coordinator's complementary proof before any shard data flows.
        """
        if self.psk is None:
            if hello.get("auth"):
                self._refuse(
                    conn,
                    "auth_required",
                    "coordinator requires auth but this worker has no PSK",
                )
            return
        if not hello.get("auth"):
            self._refuse(
                conn,
                "auth_required",
                "this worker requires a PSK handshake (--psk-file)",
            )
        nonce_c = hello["nonce"]
        nonce_w = fresh_nonce()
        send_message(
            conn,
            {
                "type": "auth_challenge",
                "nonce": nonce_w,
                "proof": hmac_proof(self.psk, "worker", nonce_c, nonce_w),
            },
            version=1,
        )
        reply, _ = recv_message(conn, max_frame=self.max_frame)
        if reply.get("type") != "auth_response":
            self._refuse(
                conn,
                "auth_failed",
                f"expected auth_response, got {reply.get('type')!r}",
            )
        want = hmac_proof(self.psk, "coord", nonce_c, nonce_w)
        proof = reply.get("proof")
        if not isinstance(proof, bytes) or not hmac.compare_digest(
            proof, want
        ):
            self._refuse(conn, "auth_failed", "bad coordinator proof")
        self._log("auth_ok")

    def _run_session(self, conn: socket.socket, hello: dict) -> None:
        k = hello["shard_index"]
        nshards = hello["nshards"]
        self._authenticate(conn, hello)
        # Version negotiation: the session speaks the highest version
        # both peers know (a v1 coordinator sends no max_version and
        # lands on 1); compression only on v2+ sessions, and only when
        # both sides opted in.
        version = min(
            negotiate_version(hello.get("max_version")), self.max_version
        )
        compress = bool(hello.get("compress")) and version >= 2
        send_message(
            conn,
            {
                "type": "hello_ack",
                "version": version,
                "compress": compress,
                "shard_index": k,
                "worker_seed": self.seed,
                "seed_entropy": hello["seed_entropy"],
            },
            version=1,
        )
        self._log("session_negotiated", version=version, compress=compress)
        stream = self._ingest(conn, hello)
        try:
            profile = hello["profile"]
            edge_weights = hello["edge_weights"]
            # Per-shard generator identical to the forked path's:
            # rebuilding the root SeedSequence from its shipped entropy
            # and spawning afresh reproduces child k of
            # spawn_generators(seed, n) on the coordinator.
            root = np.random.SeedSequence(
                hello["seed_entropy"],
                spawn_key=tuple(hello.get("seed_spawn_key") or ()),
            )
            rng = np.random.default_rng(root.spawn(nshards)[k])
            gen = shard_stream_task(
                base_from_spec(hello["base"]),
                stream,
                lo=hello["lo"],
                hi=hello["hi"],
                v_lo=hello["v_lo"],
                v_hi=hello["v_hi"],
                num_parts=hello["num_parts"],
                C=hello["C"],
                counts=tuple(hello["counts"]),
                shard_weight=hello["shard_weight"],
                total_weight=hello["total_weight"],
                nshards=nshards,
                edge_w=edge_weights if profile["use_edge_weights"] else None,
                final_edge_weights=edge_weights,
                rng=rng,
                profile=profile,
                edge_degrees=hello["edge_degrees"],
                boundary_ship=hello["boundary_ship"],
            )
            send_message(
                conn,
                {"type": "reply", "body": next(gen)},
                version=version,
                compress=compress,
            )
            self._log("phase1_done", shard=k)
            rounds = 0
            while True:
                msg, _ = recv_message(conn, max_frame=self.max_frame)
                if msg["type"] != "round":
                    raise ProtocolError(
                        f"expected round frame, got {msg['type']!r}"
                    )
                if msg["kind"] == "stop":
                    try:
                        gen.send(("stop", msg["ctl"]))
                    except StopIteration as stop_exc:
                        send_message(
                            conn,
                            {"type": "reply", "body": stop_exc.value},
                            version=version,
                            compress=compress,
                        )
                        self._log("session_done", shard=k, rounds=rounds)
                        return
                    raise ProtocolError(
                        "shard generator yielded instead of finishing on stop"
                    )
                rounds += 1
                send_message(
                    conn,
                    {
                        "type": "reply",
                        "body": gen.send((msg["kind"], msg["ctl"])),
                    },
                    version=version,
                    compress=compress,
                )
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()


def main(argv=None) -> int:
    """Module entry point (``python -m repro.cluster.worker``)."""
    import argparse

    parser = argparse.ArgumentParser(description=ClusterWorker.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--log-file", default=None)
    parser.add_argument("--psk-file", default=None)
    args = parser.parse_args(argv)
    psk = None
    if args.psk_file is not None:
        from repro.cluster.protocol import load_psk

        psk = load_psk(args.psk_file)
    ClusterWorker(
        args.host,
        args.port,
        seed=args.seed,
        log_path=args.log_file,
        psk=psk,
    ).serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
