#!/usr/bin/env python3
"""Profiling-driven discovery on an *unknown* machine (paper Section 4.2).

A key design point of HyperPRAW: it never needs to be told the topology.
"Discovery through profiling gives HyperPRAW flexibility as it can be
applied to any architecture topology ... an advantage in environments
where the architecture is not known (in Cloud computing), or when it is
known but unreliable due to contextual circumstances (shared network
resources)."

This example builds a *cloud-like* machine the partitioner knows nothing
about — a fat-tree of VMs with heavy, noisy bandwidth variation
(oversubscribed racks, noisy neighbours) — then:

1. ring-profiles it, showing the measured matrix recovers the hidden
   rack structure;
2. partitions a communication-heavy workload with and without the
   discovered cost matrix;
3. shows the aware variant wins despite never seeing the true topology.

Run:  python examples/cloud_discovery.py
"""

import numpy as np

from repro.architecture import (
    BandwidthModel,
    LevelLinkSpec,
    RingProfiler,
    fat_tree_topology,
)
from repro.bench import SyntheticBenchmark
from repro.core import HyperPRAW, evaluate_partition
from repro.hypergraph import load_instance
from repro.partitioning import MultilevelRB
from repro.simcomm import LinkModel
from repro.utils import ascii_heatmap, format_table

# ----------------------------------------------------------------------
# 1. The hidden machine: 4 VMs/node, 4 nodes/rack, 2 racks, with an
#    oversubscribed rack uplink and 25% noisy-neighbour jitter.
# ----------------------------------------------------------------------
topology = fat_tree_topology(cores=4, nodes=4, racks=2)
cloud = BandwidthModel(
    topology,
    [
        LevelLinkSpec(bandwidth_mbs=4000.0, latency_us=0.5),   # same VM host
        LevelLinkSpec(bandwidth_mbs=1200.0, latency_us=5.0),   # same rack
        LevelLinkSpec(bandwidth_mbs=150.0, latency_us=40.0),   # cross rack
    ],
    noise_sigma=0.25,
)
bw_truth, lat_truth = cloud.matrices(seed=99)
machine = LinkModel(bw_truth, lat_truth)
p = topology.num_units
print(f"hidden machine: {topology.describe()} (the partitioner never sees this)")

# ----------------------------------------------------------------------
# 2. Discovery: the tenant only runs the ring profiler.
# ----------------------------------------------------------------------
profile = RingProfiler(machine, repeats=3, measurement_noise=0.05).profile(seed=1)
print(f"\nmeasured bandwidth (median rel. error vs hidden truth: "
      f"{profile.relative_error(bw_truth):.1%})")
print(ascii_heatmap(profile.bandwidth_mbs, max_size=32, title="discovered bandwidth (log10 MB/s)"))
cost_matrix = profile.cost_matrix()

# ----------------------------------------------------------------------
# 3. Partition a communication-bound workload with what was discovered.
# ----------------------------------------------------------------------
hg = load_instance("sat14_itox_vc1130_dual", scale=0.6)
print(f"\nworkload: {hg}")
partitions = {
    "multilevel-rb": MultilevelRB().partition(hg, p, seed=2),
    "hyperpraw-basic": HyperPRAW.basic().partition(hg, p),
    "hyperpraw-aware": HyperPRAW.aware().partition(hg, p, cost_matrix=cost_matrix),
}
bench = SyntheticBenchmark(machine, message_bytes=2048, timesteps=20)
rows = []
for name, result in partitions.items():
    quality = evaluate_partition(hg, result.assignment, p, cost_matrix, algorithm=name)
    outcome = bench.run(hg, result.assignment, p)
    rows.append(
        [
            name,
            int(quality.pc_cost),
            round(outcome.runtime_s * 1e3, 2),
            round(outcome.trace.fraction_on_fast_links(bw_truth), 3),
        ]
    )
print()
print(
    format_table(
        ["algorithm", "PC cost", "sim runtime (ms)", "bytes on fast links"],
        rows,
        title=f"cloud workload across {p} VMs (topology discovered, never given)",
    )
)
base, aware = rows[0][2], rows[2][2]
print(f"\naware speedup over multilevel baseline: {base / aware:.2f}x "
      "- achieved purely from profiling measurements.")
