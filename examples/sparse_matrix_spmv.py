#!/usr/bin/env python3
"""Partitioning sparse matrix-vector multiplication (paper Section 8.2).

The second domain the paper targets: parallel SpMV, the kernel behind
iterative solvers.  Under the row-net hypergraph model (Catalyurek &
Aykanat), columns are vertices, rows are hyperedges, and the hyperedge
cut bounds the x-vector entries that must be communicated per multiply.

This example assembles a 3-D FEM-style stiffness matrix, converts it to a
hypergraph through the library's sparse-matrix bridge, distributes the
columns over a simulated cluster, and reports the communication each
partitioner implies for one multiply — first architecture-blind, then
architecture-aware.

Run:  python examples/sparse_matrix_spmv.py
"""

import numpy as np
import scipy.sparse as sp

from repro.architecture import archer_like_bandwidth, archer_like_topology, RingProfiler
from repro.bench import SyntheticBenchmark
from repro.core import HyperPRAW, HyperPRAWConfig, evaluate_partition
from repro.hypergraph import Hypergraph
from repro.partitioning import MultilevelRB
from repro.simcomm import LinkModel
from repro.utils import format_table

rng = np.random.default_rng(7)

# ----------------------------------------------------------------------
# 1. Assemble a FEM-style sparse matrix: 7-point stencil on an
#    n x n x n grid plus a few long-range coupling entries.
# ----------------------------------------------------------------------
n = 12
N = n**3


def flat(i, j, k):
    return (i * n + j) * n + k


rows, cols = [], []
for i in range(n):
    for j in range(n):
        for k in range(n):
            me = flat(i, j, k)
            rows.append(me)
            cols.append(me)
            for di, dj, dk in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
                if i + di < n and j + dj < n and k + dk < n:
                    other = flat(i + di, j + dj, k + dk)
                    rows.extend((me, other))
                    cols.extend((other, me))
extra = rng.integers(0, N, size=(N // 4, 2))
rows.extend(extra[:, 0].tolist())
cols.extend(extra[:, 1].tolist())
matrix = sp.csr_array(
    (np.ones(len(rows)), (rows, cols)), shape=(N, N)
)
print(f"stiffness matrix: {N}x{N}, nnz={matrix.nnz}")

# 2. Row-net hypergraph: one net per matrix row.
hg = Hypergraph.from_sparse(matrix, model="row-net", name="fem-stiffness")
print(f"row-net hypergraph: {hg}")

# 3. Machine and profiling.
topology = archer_like_topology(num_nodes=2)
bw, lat = archer_like_bandwidth(topology).matrices(seed=3)
machine = LinkModel(bw, lat)
cost_matrix = RingProfiler(machine, repeats=2).profile(seed=3).cost_matrix()
p = topology.num_units

# 4. Distribute columns; simulate the x-vector exchange of one multiply.
#    Strongly structured matrices reward a gentler balance weight: the
#    FENNEL-form initial alpha lets early passes build contiguous blocks
#    before balance pressure takes over (see repro.core.schedule).
config = HyperPRAWConfig(alpha_initial="fennel")
partitions = {
    "multilevel-rb": MultilevelRB().partition(hg, p, seed=5),
    "hyperpraw-basic": HyperPRAW.basic(config).partition(hg, p),
    "hyperpraw-aware": HyperPRAW.aware(config).partition(hg, p, cost_matrix=cost_matrix),
}
bench = SyntheticBenchmark(machine, message_bytes=8, timesteps=50)  # 1 double/entry
rows_out = []
for name, result in partitions.items():
    quality = evaluate_partition(hg, result.assignment, p, cost_matrix, algorithm=name)
    outcome = bench.run(hg, result.assignment, p)
    rows_out.append(
        [
            name,
            int(quality.hyperedge_cut),
            int(quality.connectivity_minus_one),
            int(quality.pc_cost),
            round(outcome.per_step_s * 1e6, 1),
        ]
    )
print()
print(
    format_table(
        [
            "algorithm",
            "cut rows",
            "lambda-1 (x entries moved)",
            "PC cost",
            "exchange / multiply (us)",
        ],
        rows_out,
        title=f"SpMV x-vector exchange across {p} cores",
    )
)
print(
    "\nlambda-1 counts the x-vector entries crossing partitions (the SpMV "
    "volume metric);\nPC cost additionally weighs *which links* carry them."
)
