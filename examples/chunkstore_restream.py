#!/usr/bin/env python3
"""Chunk store walkthrough: convert once, restream many times.

HyperPRAW restreams its input over and over, so out-of-core runs pay the
text parser once per invocation — unless the stream is cached in a
replayable binary form.  This example:

1. writes a streaming stress instance to an hMetis text file;
2. **converts** it once into a persistent binary chunk store
   (``cached_stream`` — the same contract as the CLI's ``--cache``);
3. restreams it **twice** from the store (one-pass placement, then
   buffered HyperPRAW-style restreaming), timing text ingest vs
   memory-mapped replay;
4. checks the store-fed assignments equal the text-fed ones exactly.

Run:  python examples/chunkstore_restream.py [--scale 0.05]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import HyperPRAWConfig
from repro.hypergraph import load_instance
from repro.hypergraph.io import write_hmetis
from repro.streaming import (
    BufferedRestreamer,
    OnePassStreamer,
    cached_stream,
    stream_hmetis,
)
from repro.utils import format_table

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--scale", type=float, default=0.05,
                    help="instance scale (default tiny, CI-friendly)")
parser.add_argument("--parts", type=int, default=8)
args = parser.parse_args()

with tempfile.TemporaryDirectory(prefix="repro-chunkstore-demo-") as tmp:
    tmp = Path(tmp)
    hg = load_instance("stream_powerlaw_xl", scale=args.scale)
    path = tmp / f"{hg.name}.hgr"
    write_hmetis(hg, path, write_weights=True)
    print(f"instance: {hg}  ->  {path.name} "
          f"({path.stat().st_size:,} bytes of text)")

    # --- 1. the price of the text path: every fresh run parses ---------
    t0 = time.perf_counter()
    with stream_hmetis(path, chunk_size=512) as text_stream:
        t_text_ingest = time.perf_counter() - t0
        onepass_text = OnePassStreamer().partition_stream(
            text_stream, args.parts
        )
    with stream_hmetis(path, chunk_size=512) as text_stream:
        buffered_text = BufferedRestreamer(
            HyperPRAWConfig(record_history=False),
            buffer_size=max(1, hg.num_vertices // 4),
        ).partition_stream(text_stream, args.parts)

    # --- 2. convert once -----------------------------------------------
    cache = tmp / "cache"
    t0 = time.perf_counter()
    store_stream, hit = cached_stream(
        path, cache, opener=stream_hmetis, chunk_size=512
    )
    t_convert = time.perf_counter() - t0
    assert not hit, "first open must convert"

    # --- 3. restream twice from the store ------------------------------
    t0 = time.perf_counter()
    store_stream, hit = cached_stream(
        path, cache, opener=stream_hmetis, chunk_size=512
    )
    t_replay_open = time.perf_counter() - t0
    assert hit, "second open must replay (parser skipped)"

    t0 = time.perf_counter()
    onepass_store = OnePassStreamer().partition_stream(
        store_stream, args.parts
    )
    t_onepass = time.perf_counter() - t0

    t0 = time.perf_counter()
    buffered_store = BufferedRestreamer(
        HyperPRAWConfig(record_history=False),
        buffer_size=max(1, hg.num_vertices // 4),
    ).partition_stream(store_stream, args.parts)
    t_buffered = time.perf_counter() - t0

    # --- 4. the store is invisible to the partitioners ------------------
    assert np.array_equal(onepass_text.assignment, onepass_store.assignment)
    assert np.array_equal(buffered_text.assignment, buffered_store.assignment)

    print(format_table(
        ("step", "wall_s"),
        [
            ("text ingest (parse -> spill)", round(t_text_ingest, 4)),
            ("convert (ingest + store write)", round(t_convert, 4)),
            ("store open (replay, parser skipped)", round(t_replay_open, 4)),
            ("restream 1: one-pass from store", round(t_onepass, 4)),
            ("restream 2: buffered from store", round(t_buffered, 4)),
        ],
        title="convert once, restream many",
    ))
    speedup = t_text_ingest / t_replay_open if t_replay_open else float("inf")
    print(f"\nstore open vs text ingest: {speedup:.0f}x faster; "
          "store-fed assignments are byte-identical to the text path.")
