#!/usr/bin/env python3
"""Quickstart: partition a hypergraph architecture-awarely in ~40 lines.

Walks the full HyperPRAW pipeline on a simulated 48-core machine:

1. build (a stand-in for) a benchmark hypergraph;
2. simulate an ARCHER-like machine and *ring-profile* its bandwidth;
3. partition with the multilevel baseline, HyperPRAW-basic and
   HyperPRAW-aware;
4. compare quality metrics and simulated benchmark runtime.

Run:  python examples/quickstart.py
"""

from repro.architecture import archer_like_bandwidth, archer_like_topology, RingProfiler
from repro.bench import SyntheticBenchmark
from repro.core import HyperPRAW, evaluate_partition
from repro.hypergraph import load_instance
from repro.partitioning import MultilevelRB
from repro.simcomm import LinkModel
from repro.utils import format_table

# 1. A hypergraph modelling the application's communication groups.
hg = load_instance("2cubes_sphere", scale=0.5)
print(f"hypergraph: {hg}")

# 2. The machine: 2 ARCHER-like nodes = 48 cores, profiled at "job start".
topology = archer_like_topology(num_nodes=2)
bandwidth, latency = archer_like_bandwidth(topology).matrices(seed=7)
machine = LinkModel(bandwidth, latency)
profile = RingProfiler(machine, repeats=2).profile(seed=7)
cost_matrix = profile.cost_matrix()  # C(i,j) = 2 - normalised bandwidth
p = topology.num_units
print(f"machine: {topology.describe()}, profiled in {profile.profiling_time_s:.3f} simulated s")

# 3. Partition three ways.
partitions = {
    "multilevel-rb": MultilevelRB().partition(hg, p, seed=1),
    "hyperpraw-basic": HyperPRAW.basic().partition(hg, p),
    "hyperpraw-aware": HyperPRAW.aware().partition(hg, p, cost_matrix=cost_matrix),
}

# 4. Compare static quality and simulated runtime.
bench = SyntheticBenchmark(machine, message_bytes=1024, timesteps=10)
rows = []
for name, result in partitions.items():
    quality = evaluate_partition(hg, result.assignment, p, cost_matrix, algorithm=name)
    outcome = bench.run(hg, result.assignment, p)
    rows.append(
        [
            name,
            int(quality.hyperedge_cut),
            int(quality.soed),
            int(quality.pc_cost),
            round(quality.imbalance, 3),
            round(outcome.runtime_s * 1e3, 2),
        ]
    )
print()
print(
    format_table(
        ["algorithm", "cut", "SOED", "PC cost", "imbalance", "sim runtime (ms)"],
        rows,
        title="quality and simulated runtime (48 cores)",
    )
)
print(
    "\nhyperpraw-aware folds the profiled cost matrix into its value "
    "function,\nso its cut traffic lands on the machine's fast links."
)
