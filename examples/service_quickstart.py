#!/usr/bin/env python3
"""Partition service quickstart: upload -> poll -> assignment -> reuse.

The in-process mirror of the curl walkthrough in ``docs/service.md``:

1. boots a :class:`~repro.service.app.PartitionService` on an ephemeral
   port (stdlib HTTP server — nothing to install);
2. uploads a suite instance as hMetis bytes and partitions it
   **synchronously** (``sync=1``);
3. submits an **async** job, polls it to completion, and streams the
   assignment back (one partition id per line);
4. re-partitions the *same upload* with a different ``k`` by digest
   (``store=...``) — no bytes re-sent, no text re-parsed — and shows
   the service's own counters proving the parser ran exactly once.

Run:  python examples/service_quickstart.py [--scale 0.05] [--parts 8]
"""

import argparse
import json
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.hypergraph import load_instance
from repro.hypergraph.io import write_hmetis
from repro.service import PartitionService, ServiceConfig

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--scale", type=float, default=0.05,
                    help="instance scale (default tiny, CI-friendly)")
parser.add_argument("--parts", type=int, default=8)
args = parser.parse_args()


def call(url, data=None, method=None):
    req = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    with urllib.request.urlopen(req) as resp:
        body = resp.read()
    return json.loads(body) if body.lstrip().startswith(b"{") else body


with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as tmp:
    hgr = Path(tmp) / "demo.hgr"
    hg = load_instance("2cubes_sphere", scale=args.scale)
    write_hmetis(hg, hgr)
    raw = hgr.read_bytes()
    print(f"instance: {hg}  ->  {len(raw):,} bytes of hMetis text")

    with PartitionService(ServiceConfig(port=0, workers=2)) as svc:
        print(f"service:  {svc.url}  "
              f"({call(svc.url + '/v1/healthz')['workers']} job workers)\n")

        # -- 2. synchronous upload-to-result ---------------------------
        job = call(
            f"{svc.url}/v1/partitions?k={args.parts}&sync=1"
            "&chunk_size=256&name=demo",
            data=raw,
        )
        src = job["request"]["source"]
        print(f"sync partition: status={job['status']}  "
              f"imbalance={job['metrics']['imbalance']:.3f}  "
              f"wall={job['metrics']['wall_time_s']:.3f}s")
        print(f"  upload parsed as it arrived: peak resident pins "
              f"{src['peak_resident_pins']:,} of {src['num_pins']:,} total\n")

        # -- 3. async job by digest, poll, stream the assignment -------
        # The upload already lives in the chunk store; referencing its
        # digest ships zero bytes and parses zero text.
        digest = job["digest"]
        job = call(
            f"{svc.url}/v1/partitions?k={args.parts}&partitioner=buffered"
            f"&max_iterations=10&store={digest}",
            method="POST",
        )
        print(f"async job {job['id']}: {job['status']}")
        while job["status"] not in ("done", "failed"):
            time.sleep(0.05)
            job = call(svc.url + job["links"]["self"])
        assert job["status"] == "done", job["error"]
        lines = call(svc.url + job["links"]["assignment"]).decode().splitlines()
        print(f"  done: {len(lines)} assignment lines, "
              f"{len(set(lines))} parts used\n")

        # -- 4. digest reuse again: different k, still zero re-parsing -
        job = call(
            f"{svc.url}/v1/partitions?k={2 * args.parts}&sync=1"
            f"&store={digest}",
            method="POST",
        )
        assert job["status"] == "done", job["error"]
        stats = call(svc.url + "/v1/healthz")["stats"]
        print(f"re-partition by digest ({digest[:18]}...): "
              f"k={2 * args.parts} done")
        print(f"  service counters: text_ingests={stats['text_ingests']} "
              f"(the parser ran once for {stats['uploads']} uploads; "
              f"store_replays={stats['store_replays']})")
        assert stats["text_ingests"] == 1, "digest reuse must not re-parse"

print("\nOK — same flow over curl in docs/service.md")
