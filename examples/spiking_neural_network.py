#!/usr/bin/env python3
"""Distributing a spiking neural network simulation (paper Section 8.2).

The paper's motivating application — the authors' own prior work — is
large-scale Spiking Neural Network (SNN) simulation: neurons fire, and
every spike must reach all postsynaptic neurons each timestep.  Modelling
each neuron's *axonal projection* (the neuron plus its postsynaptic
targets) as a hyperedge makes total spike traffic proportional to the
hypergraph cut, which is exactly what HyperPRAW minimises — weighted by
where in the machine each partition lives.

This example builds a synthetic cortical-sheet SNN (distance-dependent
connectivity on a 2-D sheet, 80/20 excitatory/inhibitory, per-neuron
firing rates as hyperedge weights), distributes it across a simulated
48-core cluster, and compares spike-delivery time per simulated step.

Run:  python examples/spiking_neural_network.py
"""

import numpy as np

from repro.architecture import archer_like_bandwidth, archer_like_topology, RingProfiler
from repro.bench import SyntheticBenchmark
from repro.core import HyperPRAW, evaluate_partition
from repro.hypergraph import Hypergraph
from repro.partitioning import MultilevelRB
from repro.simcomm import LinkModel
from repro.utils import format_table

rng = np.random.default_rng(2019)

# ----------------------------------------------------------------------
# 1. Synthetic cortical sheet: N neurons on a sqrt(N) x sqrt(N) grid.
#    Each neuron projects to ~FANOUT targets with distance-decaying
#    probability; inhibitory neurons (20%) project locally and densely.
# ----------------------------------------------------------------------
N = 1600
SIDE = int(np.sqrt(N))
FANOUT = 24

coords = np.stack([np.arange(N) % SIDE, np.arange(N) // SIDE], axis=1)
is_inhibitory = rng.random(N) < 0.2

edges = []
weights = []
for neuron in range(N):
    sigma = 2.0 if is_inhibitory[neuron] else 5.0
    fanout = FANOUT // 2 if is_inhibitory[neuron] else FANOUT
    offsets = np.rint(rng.normal(0.0, sigma, size=(fanout, 2))).astype(int)
    targets = coords[neuron] + offsets
    np.clip(targets, 0, SIDE - 1, out=targets)
    flat = np.unique(targets[:, 0] + SIDE * targets[:, 1])
    pins = np.unique(np.append(flat, neuron))
    if pins.size < 2:
        continue
    edges.append(pins)
    # Hyperedge weight = expected spikes/step: inhibitory neurons fire
    # faster; this exercises the paper's weighted-hyperedge extension.
    weights.append(3.0 if is_inhibitory[neuron] else 1.0)

snn = Hypergraph(N, edges, edge_weights=weights, name="cortical-sheet-snn")
print(f"SNN model: {snn} (axonal projections as hyperedges)")

# ----------------------------------------------------------------------
# 2. The cluster: 2 ARCHER-like nodes, profiled at job start.
# ----------------------------------------------------------------------
topology = archer_like_topology(num_nodes=2)
bw, lat = archer_like_bandwidth(topology).matrices(seed=11)
machine = LinkModel(bw, lat)
cost_matrix = RingProfiler(machine, repeats=2).profile(seed=11).cost_matrix()
p = topology.num_units

# ----------------------------------------------------------------------
# 3. Distribute neurons and simulate spike exchange.
#    Each simulated step: every projection whose pins straddle partitions
#    sends one spike packet per cut pair (the paper's null-compute
#    benchmark with 64-byte spike packets).
# ----------------------------------------------------------------------
partitions = {
    "multilevel-rb": MultilevelRB().partition(snn, p, seed=3),
    "hyperpraw-basic": HyperPRAW.basic().partition(snn, p),
    "hyperpraw-aware": HyperPRAW.aware().partition(snn, p, cost_matrix=cost_matrix),
}
bench = SyntheticBenchmark(machine, message_bytes=64, timesteps=100)
rows = []
for name, result in partitions.items():
    quality = evaluate_partition(snn, result.assignment, p, cost_matrix, algorithm=name)
    outcome = bench.run(snn, result.assignment, p)
    rows.append(
        [
            name,
            int(quality.pc_cost),
            round(outcome.per_step_s * 1e6, 1),
            round(outcome.runtime_s * 1e3, 2),
            round(outcome.trace.fraction_on_fast_links(bw), 3),
        ]
    )
print()
print(
    format_table(
        [
            "algorithm",
            "PC cost",
            "spike delivery / step (us)",
            "100-step runtime (ms)",
            "bytes on fast links",
        ],
        rows,
        title=f"SNN spike exchange across {p} cores",
    )
)
print(
    "\nArchitecture-aware placement keeps dense local circuits on "
    "same-node cores,\nso most spike traffic rides the fast intra-node links."
)
