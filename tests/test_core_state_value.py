"""Tests for the incremental stream state and the value function."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.architecture.cost import uniform_cost_matrix
from repro.core.metrics import edge_partition_counts, partition_loads
from repro.core.state import StreamState
from repro.core.value import assignment_values, best_partition
from repro.hypergraph.model import Hypergraph


class TestStreamState:
    def test_initial_state_matches_metrics(self, tiny_hypergraph):
        a = np.array([0, 1, 0, 1, 0, 1])
        state = StreamState(tiny_hypergraph, 2, a)
        assert np.array_equal(
            state.edge_counts, edge_partition_counts(tiny_hypergraph, a, 2)
        )
        assert np.array_equal(
            state.loads, partition_loads(tiny_hypergraph, a, 2)
        )

    def test_remove_place_roundtrip(self, tiny_hypergraph):
        a = np.array([0, 1, 0, 1, 0, 1])
        state = StreamState(tiny_hypergraph, 2, a)
        old = state.remove(2)
        assert old == 0
        state.place(2, 1)
        assert state.assignment[2] == 1
        state.consistency_check()

    def test_double_remove_rejected(self, tiny_hypergraph):
        state = StreamState(tiny_hypergraph, 2, np.zeros(6, dtype=int))
        state.remove(0)
        with pytest.raises(RuntimeError):
            state.remove(1)

    def test_place_wrong_vertex_rejected(self, tiny_hypergraph):
        state = StreamState(tiny_hypergraph, 2, np.zeros(6, dtype=int))
        state.remove(0)
        with pytest.raises(RuntimeError):
            state.place(1, 0)

    def test_neighbour_counts_exclude_removed_vertex(self, tiny_hypergraph):
        # assignment [0,0,1,1,2,2]; removing vertex 0 and asking for X:
        # edge {0,1,2}: neighbours 1(p0), 2(p1); edge {0,5}: 5(p2).
        state = StreamState(tiny_hypergraph, 3, np.array([0, 0, 1, 1, 2, 2]))
        state.remove(0)
        assert state.neighbour_counts(0).tolist() == [1, 1, 1]

    def test_isolated_vertex_neighbours_zero(self):
        hg = Hypergraph(4, [[0, 1]])
        state = StreamState(hg, 2, np.zeros(4, dtype=int))
        state.remove(3)
        assert state.neighbour_counts(3).tolist() == [0, 0]

    def test_imbalance(self, tiny_hypergraph):
        state = StreamState(tiny_hypergraph, 2, np.zeros(6, dtype=int))
        assert state.imbalance() == pytest.approx(2.0)

    def test_expected_loads_validation(self, tiny_hypergraph):
        with pytest.raises(ValueError):
            StreamState(
                tiny_hypergraph, 2, np.zeros(6, dtype=int), expected_loads=np.ones(3)
            )
        with pytest.raises(ValueError):
            StreamState(
                tiny_hypergraph,
                2,
                np.zeros(6, dtype=int),
                expected_loads=np.array([1.0, 0.0]),
            )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 3)), min_size=1, max_size=60))
    def test_incremental_matches_recompute(self, moves):
        """After arbitrary move sequences the incremental counters equal a
        fresh recomputation — the core soundness property of the stream."""
        hg = Hypergraph(
            10,
            [[0, 1, 2], [2, 3, 4], [4, 5, 6], [6, 7, 8], [8, 9, 0], [1, 5, 9]],
        )
        state = StreamState(hg, 4, np.arange(10) % 4)
        for v, part in moves:
            state.remove(v)
            state.place(v, part)
        state.consistency_check()


class TestValueFunction:
    def test_prefers_neighbour_partition(self):
        """All else equal, the vertex goes where its neighbours are."""
        X = np.array([5.0, 0.0, 0.0])
        cost = uniform_cost_matrix(3)
        loads = np.ones(3)
        expected = np.ones(3)
        j = best_partition(X, cost, loads, expected, alpha=0.1)
        assert j == 0

    def test_load_term_breaks_ties(self):
        X = np.zeros(3)
        cost = uniform_cost_matrix(3)
        loads = np.array([5.0, 1.0, 5.0])
        j = best_partition(X, cost, loads, np.ones(3), alpha=1.0)
        assert j == 1

    def test_huge_alpha_forces_balance(self):
        X = np.array([10.0, 0.0])
        cost = uniform_cost_matrix(2)
        loads = np.array([100.0, 0.0])
        j = best_partition(X, cost, loads, np.ones(2), alpha=1e9)
        assert j == 1

    def test_cost_matrix_steers_choice(self):
        """Neighbours in partition 0; candidate partitions 1 and 2 are
        empty, but 1 has a cheap link to 0 — the vertex should prefer 1
        over 2 when it cannot join 0 (0 is overloaded)."""
        cost = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 2.0], [2.0, 2.0, 0.0]]
        )
        X = np.array([8.0, 0.0, 0.0])
        loads = np.array([50.0, 1.0, 1.0])
        values = assignment_values(X, cost, loads, np.ones(3) * 10, alpha=10.0)
        assert values[1] > values[2]

    def test_matches_eq1_by_hand(self):
        """V_i = -N_i * T_i - alpha*W_i/E_i on a worked example."""
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        X = np.array([3.0, 1.0])  # neighbours in both partitions
        loads = np.array([4.0, 2.0])
        expected = np.array([3.0, 3.0])
        alpha = 0.5
        values = assignment_values(X, cost, loads, expected, alpha)
        # N = 2/2 = 1; T_0 = X_1*C(0,1) = 1; T_1 = X_0*C(1,0) = 3
        assert values[0] == pytest.approx(-1.0 * 1.0 - 0.5 * 4 / 3)
        assert values[1] == pytest.approx(-1.0 * 3.0 - 0.5 * 2 / 3)

    def test_presence_threshold(self):
        """Threshold 2 ignores partitions with a single neighbour in the
        N_i scaling (literal Eq. 3 reading)."""
        cost = uniform_cost_matrix(4)
        X = np.array([1.0, 1.0, 1.0, 0.0])
        loads = np.zeros(4)
        v1 = assignment_values(X, cost, loads, np.ones(4), 0.0, presence_threshold=1)
        v2 = assignment_values(X, cost, loads, np.ones(4), 0.0, presence_threshold=2)
        # threshold 2 => N = 0 => communication term vanishes entirely
        assert np.allclose(v2, 0.0)
        assert not np.allclose(v1, 0.0)

    def test_out_buffer_reused(self):
        out = np.empty(3)
        res = assignment_values(
            np.ones(3), uniform_cost_matrix(3), np.ones(3), np.ones(3), 1.0, out=out
        )
        assert res is out
