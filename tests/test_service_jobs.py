"""Lifecycle-edge tests for the job layer (repro.service.jobs).

The thread pool hid these edges behind the GIL; the process pool makes
them real: results crossing a pipe, pools racing shutdown, and the two
execution pools having to be observably identical.  Covered here:

* double-poll of a done job returns a stable, identical document;
* ``sync=1`` racing pool shutdown still terminates (sync runs bypass
  the queue; async submits after close fail fast with ``pool_closed``);
* a job result larger than one pipe/response buffer arrives whole;
* ``ThreadJobPool`` and ``ProcessJobPool`` produce bit-identical
  assignments on all three partitioners.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.parallel import fork_available
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.model import Hypergraph
from repro.service import PartitionService, ServiceConfig
from repro.service.jobs import JobStore, resolve_pool

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process pool needs the fork start method"
)


def _request(url, data=None, method=None):
    req = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    try:
        with urllib.request.urlopen(req) as resp:
            body = resp.read()
            status = resp.status
    except urllib.error.HTTPError as err:
        body = err.read()
        status = err.code
    try:
        return status, json.loads(body)
    except json.JSONDecodeError:
        return status, body.decode()


@pytest.fixture
def tiny_hgr(tiny_hypergraph, tmp_path):
    path = tmp_path / "tiny.hgr"
    write_hmetis(tiny_hypergraph, path)
    return path.read_bytes()


# ----------------------------------------------------------------------
# pool resolution
# ----------------------------------------------------------------------
class TestResolvePool:
    def test_auto_prefers_process_where_fork_exists(self):
        expected = "process" if fork_available() else "thread"
        assert resolve_pool("auto") == expected

    def test_explicit_values_pass_through(self):
        assert resolve_pool("thread") == "thread"
        if fork_available():
            assert resolve_pool("process") == "process"

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="pool must be one of"):
            resolve_pool("fibers")

    def test_config_validates_pool(self):
        with pytest.raises(ValueError, match="pool must be one of"):
            ServiceConfig(pool="fibers")


# ----------------------------------------------------------------------
# lifecycle edges
# ----------------------------------------------------------------------
class TestLifecycleEdges:
    def test_double_poll_of_done_job_is_stable(self, tmp_path, tiny_hgr):
        cfg = ServiceConfig(port=0, workers=1, cache_dir=tmp_path / "c")
        with PartitionService(cfg) as svc:
            status, job = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1", data=tiny_hgr
            )
            assert status == 200 and job["status"] == "done"
            polls = [
                _request(svc.url + job["links"]["self"]) for _ in range(2)
            ]
            assert polls[0] == (200, polls[1][1])
            assert polls[0][1] == polls[1][1]
            # Terminal fields do not drift between polls.
            assert polls[0][1]["finished_at"] == job["finished_at"]
            assert polls[0][1]["metrics"] == job["metrics"]

    def test_sync_racing_pool_shutdown_still_terminates(
        self, tmp_path, tiny_hgr
    ):
        """``sync=1`` bypasses the queue, so it works even once the pool
        is closed; an async submit after close fails fast with
        ``pool_closed`` instead of stranding the job on a dead queue."""
        cfg = ServiceConfig(port=0, workers=1, cache_dir=tmp_path / "c")
        with PartitionService(cfg) as svc:
            svc.api.jobs.close()  # the race, made deterministic
            status, job = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1", data=tiny_hgr
            )
            assert status == 200
            assert job["status"] == "done", job["error"]
            status, job = _request(
                f"{svc.url}/v1/partitions?k=2", data=tiny_hgr
            )
            assert status == 202
            status, doc = _request(svc.url + job["links"]["self"])
            assert status == 200
            assert doc["status"] == "failed"
            assert doc["error"]["code"] == "pool_closed"

    def test_result_larger_than_one_buffer(self, tmp_path):
        """A 70k-vertex assignment (> _ASSIGNMENT_SLICE lines, > one
        pipe buffer from a forked worker) arrives complete."""
        n = 70_000
        edges = [[i, i + 1, i + 2] for i in range(0, 60, 3)]
        path = tmp_path / "wide.hgr"
        write_hmetis(Hypergraph(n, edges, name="wide"), path)
        cfg = ServiceConfig(port=0, workers=1, cache_dir=tmp_path / "c")
        with PartitionService(cfg) as svc:
            status, job = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1&chunk_size=8192",
                data=path.read_bytes(),
            )
            assert status == 200
            assert job["status"] == "done", job["error"]
            status, text = _request(svc.url + job["links"]["assignment"])
            assert status == 200
            lines = text.splitlines()
            assert len(lines) == n
            assert set(lines) <= {"0", "1"}


# ----------------------------------------------------------------------
# pool equality: thread == process, bit for bit
# ----------------------------------------------------------------------
@needs_fork
class TestPoolEquality:
    @pytest.mark.parametrize("partitioner", ["onepass", "buffered", "sharded"])
    def test_pools_bit_identical(self, tmp_path, tiny_hgr, partitioner):
        """The execution pool is an implementation detail: same upload,
        same seed => byte-identical assignment from both pools."""
        results = {}
        for pool in ("thread", "process"):
            cfg = ServiceConfig(
                port=0, workers=2, pool=pool, cache_dir=tmp_path / pool
            )
            with PartitionService(cfg) as svc:
                assert svc.api.jobs.pool == pool
                status, job = _request(
                    f"{svc.url}/v1/partitions?k=2&sync=1&seed=11"
                    f"&partitioner={partitioner}&max_iterations=5"
                    "&chunk_size=2",
                    data=tiny_hgr,
                )
                assert status == 200
                assert job["status"] == "done", job["error"]
                status, text = _request(svc.url + job["links"]["assignment"])
                assert status == 200
                results[pool] = (text, job["metrics"]["algorithm"])
        assert results["thread"] == results["process"]

    def test_error_shape_identical_across_pools(self):
        """In-child exceptions report the same {code, message} envelope
        the thread pool produces."""

        def boom():
            raise ValueError("nope")

        docs = {}
        for pool in ("thread", "process"):
            store = JobStore(workers=1, pool=pool)
            try:
                job = store.create({})
                store.run(job, boom)
                docs[pool] = (job.status, job.error)
            finally:
                store.close()
        assert docs["thread"] == docs["process"]
        assert docs["thread"] == ("failed", {"code": "ValueError", "message": "nope"})
