"""Cluster-layer integration tests (loopback sockets only).

The load-bearing contract: ``DistributedStreamer`` over loopback
workers is **bit-identical** to ``ShardedStreamer(workers=N)`` — same
seed, same assignment, for the Eq. 1 and FENNEL scorers and for the
buffered restreamer, over both ship modes — because the distributed
layer swaps the transport under :func:`shard_stream_task`, never the
algorithm.  Plus the failure semantics: a dead endpoint degrades to a
local shard without changing the result, a worker lost mid-round is
re-dialed once and replayed, and ``on_loss="fail"`` raises promptly.
"""

import threading

import numpy as np
import pytest

from repro.cluster import ClusterWorker, DistributedStreamer
from repro.core import HyperPRAWConfig
from repro.hypergraph.generators import powerlaw_hypergraph
from repro.hypergraph.io import write_hmetis
from repro.streaming import (
    HypergraphChunkStream,
    OnePassStreamer,
    ShardedStreamer,
    stream_hmetis,
)

P = 4
N_WORKERS = 3
TIMEOUT = 10.0


def _hg():
    return powerlaw_hypergraph(300, 360, 3.2, seed=2, name="cluster-pl")


@pytest.fixture(scope="module")
def fleet():
    """Three loopback workers shared by the golden tests (each session
    is independent, so module scope is safe and saves bind/teardown)."""
    workers = [ClusterWorker("127.0.0.1", 0, seed=k) for k in range(N_WORKERS)]
    threads = [w.start_in_thread() for w in workers]
    yield [("127.0.0.1", w.port) for w in workers]
    for w in workers:
        w.stop()
    for t in threads:
        t.join(timeout=TIMEOUT)
        assert not t.is_alive()


def _buffered_base():
    from repro.streaming import BufferedRestreamer

    return BufferedRestreamer(
        HyperPRAWConfig(record_history=False, max_iterations=12),
        buffer_size=64,
    )


def _bases():
    return {
        "onepass-eq1": lambda: OnePassStreamer(scorer="eq1"),
        "onepass-fennel": lambda: OnePassStreamer(scorer="fennel"),
        "buffered": _buffered_base,
    }


class TestLoopbackGoldens:
    @pytest.mark.parametrize("base_key", sorted(_bases()))
    def test_chunks_ship_bit_identical(self, fleet, base_key):
        make = _bases()[base_key]
        hg = _hg()
        golden = ShardedStreamer(
            make(), workers=N_WORKERS, chunk_size=32
        ).partition_stream(HypergraphChunkStream(hg, 32), P, seed=7)
        result = DistributedStreamer(
            make(), hosts=fleet, timeout=TIMEOUT, chunk_size=32
        ).partition_stream(HypergraphChunkStream(hg, 32), P, seed=7)
        np.testing.assert_array_equal(result.assignment, golden.assignment)
        md = result.metadata
        assert md["parallel_mode"] == "distributed"
        assert md["degraded_shards"] == []
        assert md["reconnected_shards"] == []
        assert md["cluster_wire_bytes"] > 0
        assert len(md["hosts"]) == N_WORKERS
        # the forked/sequential twin reports its own effective mode
        assert golden.metadata["parallel_mode"] in ("forked", "sequential")

    def test_text_ship_bit_identical(self, fleet, tmp_path):
        path = tmp_path / "cluster.hgr"
        write_hmetis(_hg(), path, write_weights=True)
        with stream_hmetis(path, chunk_size=48) as stream:
            golden = ShardedStreamer(
                OnePassStreamer(), workers=N_WORKERS, chunk_size=48
            ).partition_stream(stream, P, seed=7)
        with stream_hmetis(path, chunk_size=48) as stream:
            result = DistributedStreamer(
                OnePassStreamer(),
                hosts=fleet,
                ship="text",
                timeout=TIMEOUT,
                chunk_size=48,
            ).partition_stream(stream, P, seed=7)
        np.testing.assert_array_equal(result.assignment, golden.assignment)
        assert result.metadata["degraded_shards"] == []

    def test_text_ship_requires_source_path(self, fleet):
        streamer = DistributedStreamer(
            OnePassStreamer(), hosts=fleet, ship="text", timeout=TIMEOUT
        )
        with pytest.raises(ValueError, match="source_path"):
            streamer.partition_stream(
                HypergraphChunkStream(_hg(), 32), P, seed=7
            )

    def test_worker_count_clamps_to_chunks(self, fleet):
        """More endpoints than chunks: same clamp rule as forked workers."""
        hg = _hg()
        stream = HypergraphChunkStream(hg, hg.num_vertices)  # one chunk
        with pytest.warns(RuntimeWarning, match="clamping"):
            result = DistributedStreamer(
                OnePassStreamer(), hosts=fleet, timeout=TIMEOUT
            ).partition_stream(stream, P, seed=7)
        assert len(result.metadata["hosts"]) == 1


_PSK = b"equivalence-suite-key"


@pytest.fixture(scope="module")
def psk_fleet():
    """Loopback workers that *require* the shared key (PSK combos)."""
    workers = [
        ClusterWorker("127.0.0.1", 0, seed=k, psk=_PSK)
        for k in range(N_WORKERS)
    ]
    threads = [w.start_in_thread() for w in workers]
    yield [("127.0.0.1", w.port) for w in workers]
    for w in workers:
        w.stop()
    for t in threads:
        t.join(timeout=TIMEOUT)
        assert not t.is_alive()


class TestKnobEquivalence:
    """Every combination of the wire knobs — tailored rows ×
    compression × PSK (8 combos, Eq. 1 and FENNEL scorers) — must be
    bit-identical to the local sharded golden.  The knobs change what
    crosses the wire, never what is computed."""

    _goldens: dict = {}

    def _golden(self, base_key):
        if base_key not in self._goldens:
            self._goldens[base_key] = ShardedStreamer(
                _bases()[base_key](), workers=N_WORKERS, chunk_size=32
            ).partition_stream(HypergraphChunkStream(_hg(), 32), P, seed=7)
        return self._goldens[base_key]

    @pytest.mark.parametrize("base_key", ["onepass-eq1", "onepass-fennel"])
    @pytest.mark.parametrize("tailored", [False, True])
    @pytest.mark.parametrize("compress", [False, True])
    @pytest.mark.parametrize("auth", [False, True])
    def test_knob_combo_bit_identical(
        self, fleet, psk_fleet, base_key, tailored, compress, auth
    ):
        result = DistributedStreamer(
            _bases()[base_key](),
            hosts=psk_fleet if auth else fleet,
            timeout=TIMEOUT,
            chunk_size=32,
            tailored=tailored,
            compress=compress,
            psk=_PSK if auth else None,
        ).partition_stream(HypergraphChunkStream(_hg(), 32), P, seed=7)
        np.testing.assert_array_equal(
            result.assignment, self._golden(base_key).assignment
        )
        md = result.metadata
        assert md["degraded_shards"] == []
        assert md["tailored"] == tailored
        # all workers here speak v2: compression lands iff requested
        assert md["cluster_wire_versions"] == [2] * N_WORKERS
        assert md["cluster_compress"] == [compress] * N_WORKERS
        if tailored:
            assert len(md["tailored_rows"]) == N_WORKERS
            assert all(n >= 0 for n in md["tailored_rows"])
            assert all(s >= 0 for s in md["broadcast_bytes_saved"])
        else:
            assert md["tailored_rows"] is None


class TestVersionCompat:
    """A v2 coordinator against v1-clamped workers (and a mixed fleet)
    negotiates down per link and still lands on the golden bits."""

    def _run_fleet(self, workers, **kwargs):
        threads = [w.start_in_thread() for w in workers]
        try:
            hg = _hg()
            golden = ShardedStreamer(
                OnePassStreamer(), workers=len(workers), chunk_size=32
            ).partition_stream(HypergraphChunkStream(hg, 32), P, seed=7)
            result = DistributedStreamer(
                OnePassStreamer(),
                hosts=[("127.0.0.1", w.port) for w in workers],
                timeout=TIMEOUT,
                chunk_size=32,
                **kwargs,
            ).partition_stream(HypergraphChunkStream(hg, 32), P, seed=7)
            np.testing.assert_array_equal(result.assignment, golden.assignment)
            assert result.metadata["degraded_shards"] == []
            return result.metadata
        finally:
            for w in workers:
                w.stop()
            for t in threads:
                t.join(timeout=TIMEOUT)
                assert not t.is_alive()

    def test_v1_workers_negotiate_down(self):
        """Old workers (max_version=1): the session runs at v1 with
        compression off, even though the coordinator asked for both —
        and tailored rows (an app-level protocol, not a frame format)
        still work."""
        workers = [
            ClusterWorker("127.0.0.1", 0, seed=k, max_version=1)
            for k in range(2)
        ]
        md = self._run_fleet(workers, compress=True, tailored=True)
        assert md["cluster_wire_versions"] == [1, 1]
        assert md["cluster_compress"] == [False, False]
        assert md["tailored"] is True

    def test_mixed_fleet_negotiates_per_link(self):
        workers = [
            ClusterWorker("127.0.0.1", 0, seed=0, max_version=1),
            ClusterWorker("127.0.0.1", 0, seed=1),
        ]
        md = self._run_fleet(workers, compress=True)
        assert md["cluster_wire_versions"] == [1, 2]
        assert md["cluster_compress"] == [False, True]


class TestConstruction:
    def test_host_parsing(self):
        assert DistributedStreamer._parse_host("node-a:7101") == ("node-a", 7101)
        assert DistributedStreamer._parse_host(("b", 8)) == ("b", 8)
        with pytest.raises(ValueError, match="host:port"):
            DistributedStreamer._parse_host("no-port")

    def test_rejects_bad_options(self):
        hosts = ["h:1"]
        with pytest.raises(ValueError, match="hosts"):
            DistributedStreamer(OnePassStreamer(), hosts=[])
        with pytest.raises(ValueError, match="ship"):
            DistributedStreamer(OnePassStreamer(), hosts=hosts, ship="carrier")
        with pytest.raises(ValueError, match="on_loss"):
            DistributedStreamer(OnePassStreamer(), hosts=hosts, on_loss="retry")
        with pytest.raises(ValueError, match="timeout"):
            DistributedStreamer(OnePassStreamer(), hosts=hosts, timeout=0)

    def test_rejects_base_without_shard_spec(self):
        class ShardableButNotShippable:
            """Satisfies the local sharding contract, has no wire spec."""

            _run_shard = staticmethod(lambda *a, **k: None)
            _shard_profile = staticmethod(lambda *a, **k: {})

        with pytest.raises(TypeError, match="_shard_spec"):
            DistributedStreamer(ShardableButNotShippable(), hosts=["h:1"])


class _DroppingLink:
    """Socket proxy that hangs up when its send allowance runs out."""

    def __init__(self, sock, sends_before_drop: int) -> None:
        self._sock = sock
        self._left = sends_before_drop

    def sendall(self, data):
        if self._left <= 0:
            self._sock.close()
            raise OSError("flaky link dropped")
        self._left -= 1
        return self._sock.sendall(data)

    def __getattr__(self, name):
        return getattr(self._sock, name)


class _FlakyWorker(ClusterWorker):
    """First session completes the handshake and phase 1, then vanishes
    when replying to the first round — so the loss lands *mid-round*;
    later sessions serve faithfully (the reconnect success scenario)."""

    sessions = 0

    def _run_session(self, conn, hello):
        self.sessions += 1
        if self.sessions == 1:
            conn = _DroppingLink(conn, 2)  # hello_ack + phase-1 reply
        return super()._run_session(conn, hello)


class TestFailureSemantics:
    def _golden(self, hg, workers):
        return ShardedStreamer(
            OnePassStreamer(), workers=workers, chunk_size=32
        ).partition_stream(HypergraphChunkStream(hg, 32), P, seed=13)

    def test_dead_endpoint_degrades_locally(self, fleet):
        hg = _hg()
        dead = ("127.0.0.1", 1)  # nothing listens on port 1
        result = DistributedStreamer(
            OnePassStreamer(),
            hosts=[fleet[0], dead],
            timeout=TIMEOUT,
            chunk_size=32,
        ).partition_stream(HypergraphChunkStream(hg, 32), P, seed=13)
        assert result.metadata["degraded_shards"] == [1]
        np.testing.assert_array_equal(
            result.assignment, self._golden(hg, 2).assignment
        )

    def test_dead_endpoint_fails_loudly(self, fleet):
        streamer = DistributedStreamer(
            OnePassStreamer(),
            hosts=[fleet[0], ("127.0.0.1", 1)],
            timeout=TIMEOUT,
            on_loss="fail",
            chunk_size=32,
        )
        with pytest.raises(RuntimeError, match="lost \\(shard 1\\)"):
            streamer.partition_stream(
                HypergraphChunkStream(_hg(), 32), P, seed=13
            )

    def test_midround_loss_reconnects_and_replays(self):
        """One re-dial after a mid-round loss: the worker replays the
        recorded history and finishes the run remotely — bit-identical,
        with the shard in ``reconnected_shards``, not degraded."""
        hg = _hg()
        steady = ClusterWorker("127.0.0.1", 0)
        flaky = _FlakyWorker("127.0.0.1", 0)
        threads = [steady.start_in_thread(), flaky.start_in_thread()]
        done = {}

        def target():
            done["result"] = DistributedStreamer(
                OnePassStreamer(),
                hosts=[("127.0.0.1", steady.port), ("127.0.0.1", flaky.port)],
                timeout=TIMEOUT,
                chunk_size=32,
            ).partition_stream(HypergraphChunkStream(hg, 32), P, seed=13)

        try:
            runner = threading.Thread(target=target, daemon=True)
            runner.start()
            runner.join(timeout=60.0)  # the no-deadlock bound
            assert not runner.is_alive(), "coordinator hung on flaky worker"
        finally:
            steady.stop()
            flaky.stop()
            for t in threads:
                t.join(timeout=TIMEOUT)
                assert not t.is_alive()
        result = done["result"]
        assert flaky.sessions == 2  # the re-dial really happened
        assert result.metadata["reconnected_shards"] == [1]
        assert result.metadata["degraded_shards"] == []
        np.testing.assert_array_equal(
            result.assignment, self._golden(hg, 2).assignment
        )
