"""Tests for the out-of-core chunked readers (repro.streaming.reader).

The load-bearing property: chunked reads concatenate to *exactly* what the
in-memory readers produce — same structure, same weights, same strict
validation errors — while never holding the full pin array in memory.
"""

import numpy as np
import pytest
import scipy.io
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.hypergraph.io import (
    HypergraphFormatError,
    read_hmetis,
    read_matrix_market,
    write_hmetis,
)
from repro.hypergraph.model import Hypergraph
from repro.hypergraph.suite import load_instance
from repro.streaming import (
    HypergraphChunkStream,
    assemble,
    stream_hmetis,
    stream_matrix_market,
)


@pytest.fixture
def weighted_hypergraph():
    return Hypergraph(
        4,
        [[0, 1], [1, 2, 3], [0, 3]],
        vertex_weights=[1, 2, 3, 4],
        edge_weights=[10, 20, 30],
        name="weighted",
    )


def _assert_stream_matches(stream, reference):
    back = assemble(stream)
    assert back == reference
    assert back.name == reference.name
    assert np.array_equal(back.vertex_weights, reference.vertex_weights)
    assert np.array_equal(back.edge_weights, reference.edge_weights)


class TestHmetisStream:
    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 10_000])
    def test_concatenates_to_read_hmetis(self, tiny_hypergraph, tmp_path, chunk_size):
        path = tmp_path / "h.hgr"
        write_hmetis(tiny_hypergraph, path)
        _assert_stream_matches(
            stream_hmetis(path, chunk_size=chunk_size), read_hmetis(path)
        )

    def test_weighted_fmt11(self, weighted_hypergraph, tmp_path):
        path = tmp_path / "w.hgr"
        write_hmetis(weighted_hypergraph, path, write_weights=True)
        _assert_stream_matches(stream_hmetis(path, chunk_size=2), read_hmetis(path))

    def test_fmt1_edge_weights_only(self, tmp_path):
        path = tmp_path / "ew.hgr"
        path.write_text("2 3 1\n9 1 2\n4 2 3\n")
        stream = stream_hmetis(path, chunk_size=2)
        assert stream.edge_weights.tolist() == [9.0, 4.0]
        _assert_stream_matches(stream, read_hmetis(path))

    def test_fmt10_vertex_weights_only(self, tmp_path):
        path = tmp_path / "vw.hgr"
        path.write_text("2 3 10\n1 2\n2 3\n5\n6\n7\n")
        stream = stream_hmetis(path, chunk_size=2)
        assert stream.vertex_weights.tolist() == [5.0, 6.0, 7.0]
        assert stream.total_vertex_weight == 18.0
        _assert_stream_matches(stream, read_hmetis(path))

    def test_comments_and_duplicate_pins(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("% header comment\n2 4\n1 2 2 1\n% mid comment\n3 4\n")
        _assert_stream_matches(stream_hmetis(path, chunk_size=3), read_hmetis(path))

    def test_fractional_edge_weights_roundtrip(self, tmp_path):
        # write_hmetis emits non-integral weights as floats; both readers
        # must round-trip the library's own output
        hg = Hypergraph(3, [[0, 1], [1, 2]], edge_weights=[1.5, 2.25])
        path = tmp_path / "frac.hgr"
        write_hmetis(hg, path, write_weights=True)
        ref = read_hmetis(path)
        assert ref.edge_weights.tolist() == [1.5, 2.25]
        _assert_stream_matches(stream_hmetis(path, chunk_size=2), ref)

    def test_bad_edge_weight_token(self, tmp_path):
        path = tmp_path / "badw.hgr"
        path.write_text("1 3 1\nx 1 2\n")
        with pytest.raises(HypergraphFormatError, match="hyperedge weight"):
            stream_hmetis(path)
        with pytest.raises(HypergraphFormatError, match="hyperedge weight"):
            read_hmetis(path)

    def test_suite_instance_roundtrip(self, small_random, tmp_path):
        path = tmp_path / "inst.hgr"
        write_hmetis(small_random, path)
        _assert_stream_matches(
            stream_hmetis(path, chunk_size=50, buffer_pins=128), read_hmetis(path)
        )

    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "empty"),
            ("1\n1 2\n", "header"),
            ("2 3\n1 2\n", "expected 2 hyperedge"),
            ("1 3\n1 9\n", "pin outside"),
            ("1 3 7\n1 2\n", "unknown fmt"),
            ("1 3\nx y\n", "non-integer"),
            ("1 3 1\n5\n", "weighted hyperedge"),
            ("2 3 10\n1 2\n2 3\n5\n", "vertex-weight"),
        ],
    )
    def test_malformed_raises_like_read_hmetis(self, tmp_path, text, match):
        path = tmp_path / "bad.hgr"
        path.write_text(text)
        with pytest.raises(HypergraphFormatError, match=match):
            stream_hmetis(path)
        # the in-memory reader rejects the same files (message prefixes may
        # differ for errors it reports against a different section)
        with pytest.raises((HypergraphFormatError, ValueError)):
            read_hmetis(path)

    def test_reiterable(self, tiny_hypergraph, tmp_path):
        path = tmp_path / "h.hgr"
        write_hmetis(tiny_hypergraph, path)
        stream = stream_hmetis(path, chunk_size=2)
        first = [c.vertex_edges.tolist() for c in stream]
        second = [c.vertex_edges.tolist() for c in stream]
        assert first == second

    def test_closed_stream_raises(self, tiny_hypergraph, tmp_path):
        path = tmp_path / "h.hgr"
        write_hmetis(tiny_hypergraph, path)
        stream = stream_hmetis(path)
        stream.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(stream)


class TestSpillCleanupOnError:
    """A parser raising mid-ingest must not leak the spill directory."""

    def _spill_dirs(self, root):
        return [d for d in root.iterdir() if d.name.startswith("repro-stream-")]

    def test_hmetis_failure_cleans_spill(self, tmp_path, monkeypatch):
        spill_root = tmp_path / "spill"
        spill_root.mkdir()
        monkeypatch.setattr("tempfile.tempdir", str(spill_root))
        path = tmp_path / "bad.hgr"
        # valid header, one good edge line, then a malformed pin: the
        # spill store exists (and holds pins) by the time the parser dies
        path.write_text("2 9\n1 2 3\n4 x\n")
        with pytest.raises(HypergraphFormatError):
            stream_hmetis(path, buffer_pins=1)
        assert self._spill_dirs(spill_root) == []

    def test_matrix_market_failure_cleans_spill(self, tmp_path, monkeypatch):
        spill_root = tmp_path / "spill"
        spill_root.mkdir()
        monkeypatch.setattr("tempfile.tempdir", str(spill_root))
        path = tmp_path / "bad.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 3\n1 1 1\n2 2 1\n9 9 1\n"  # third entry out of range
        )
        with pytest.raises(HypergraphFormatError):
            stream_matrix_market(path, buffer_pins=1)
        assert self._spill_dirs(spill_root) == []


class TestMatrixMarketStream:
    def _roundtrip(self, matrix, tmp_path, chunk_size=5, **mm_kwargs):
        path = tmp_path / "m.mtx"
        scipy.io.mmwrite(str(path), matrix, **mm_kwargs)
        for model in ("row-net", "column-net"):
            ref = read_matrix_market(path, model=model)
            _assert_stream_matches(
                stream_matrix_market(path, model=model, chunk_size=chunk_size), ref
            )

    def test_general(self, tmp_path):
        self._roundtrip(sp.random(9, 13, density=0.25, random_state=0), tmp_path)

    def test_symmetric(self, tmp_path):
        m = sp.random(11, 11, density=0.2, random_state=1)
        self._roundtrip((m + m.T).tocoo(), tmp_path, symmetry="symmetric")

    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 4 5\n1 1\n1 3\n2 2\n3 1\n3 4\n"
        )
        _assert_stream_matches(
            stream_matrix_market(path, chunk_size=2), read_matrix_market(path)
        )

    def test_empty_rows_dropped_with_renumbering(self, tmp_path):
        # row 2 of 4 is all-zero: from_sparse drops and renumbers nets.
        m = sp.coo_array(
            (np.ones(4), ([0, 0, 2, 3], [0, 2, 1, 2])), shape=(4, 3)
        )
        self._roundtrip(m, tmp_path, chunk_size=1)

    def test_duplicate_entries_counted_once(self, tmp_path):
        path = tmp_path / "dup.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 4\n1 1 1.0\n1 1 2.0\n2 1 1.0\n2 2 1.0\n"
        )
        stream = stream_matrix_market(path, chunk_size=1)
        ref = read_matrix_market(path)
        assert stream.num_pins == ref.num_pins == 3
        _assert_stream_matches(stream, ref)

    @pytest.mark.parametrize(
        "text,match",
        [
            ("not a banner\n1 1 0\n", "banner"),
            ("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n", "coordinate"),
            ("%%MatrixMarket matrix coordinate real general\n", "size line"),
            ("%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1\n", "size line"),
            ("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n", "expected 2 entries"),
            ("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n", "outside"),
            ("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 1\n", "more than"),
            ("%%MatrixMarket matrix coordinate real wat\n1 1 1\n1 1 1\n", "symmetry"),
        ],
    )
    def test_malformed_raises(self, tmp_path, text, match):
        path = tmp_path / "bad.mtx"
        path.write_text(text)
        with pytest.raises(HypergraphFormatError, match=match):
            stream_matrix_market(path)


class TestMemoryBound:
    """The out-of-core claim: the full pin array is never materialised."""

    def test_counting_reader_bounds_resident_pins(self, tmp_path):
        hg = load_instance("sparsine", scale=0.5)
        path = tmp_path / "big.hgr"
        write_hmetis(hg, path)
        chunk_size, buffer_pins = 64, 512
        stream = stream_hmetis(path, chunk_size=chunk_size, buffer_pins=buffer_pins)
        # Counting reader: walk every chunk, tracking the largest pin
        # population handed out at once.
        max_chunk_pins = 0
        total = 0
        for chunk in stream:
            max_chunk_pins = max(max_chunk_pins, chunk.num_pins)
            total += chunk.num_pins
        assert total == hg.num_pins  # nothing lost ...
        # ... yet no single resident structure approached the full array:
        assert max_chunk_pins < hg.num_pins / 4
        assert stream.peak_resident_pins <= buffer_pins + max_chunk_pins
        assert stream.peak_resident_pins < hg.num_pins / 4

    def test_partition_under_memory_bound(self, tmp_path):
        """A suite instance is partitioned end-to-end under the bound."""
        from repro.streaming import OnePassStreamer

        hg = load_instance("sparsine", scale=0.5)
        path = tmp_path / "big.hgr"
        write_hmetis(hg, path)
        stream = stream_hmetis(path, chunk_size=64, buffer_pins=512)
        result = OnePassStreamer().partition_stream(stream, 8)
        assert result.assignment.size == hg.num_vertices
        assert (result.assignment >= 0).all()
        assert stream.peak_resident_pins < hg.num_pins / 4
        assert result.metadata["peak_resident_pins"] == stream.peak_resident_pins


class TestPinBudget:
    """Pin-budgeted chunk boundaries (ROADMAP item (e)): the resident
    bound is cut by pins, not vertices, so hub-dominated vertex ranges
    split into many small chunks."""

    def test_hmetis_pin_budget_bounds_chunks(self, tmp_path):
        hg = load_instance("stream_powerlaw_xl", scale=0.05)
        path = tmp_path / "hub.hgr"
        write_hmetis(hg, path)
        budget = max(64, hg.num_pins // 40)
        unbudgeted = stream_hmetis(path, chunk_size=256)
        budgeted = stream_hmetis(path, chunk_size=256, pin_budget=budget)
        plain_max = max(c.num_pins for c in unbudgeted)
        budget_max = 0
        total = 0
        for chunk in budgeted:
            budget_max = max(budget_max, chunk.num_pins)
            total += chunk.num_pins
        assert total == hg.num_pins  # nothing lost
        # a chunk may exceed the budget only through one irreducible
        # storage bucket (a hub vertex's own pins)
        bucket_max = int(budgeted._spill.pins_per_chunk.max())
        assert budget_max <= max(budget, bucket_max)
        assert budget_max < plain_max  # the hub chunk actually split
        assert budgeted.num_chunks > unbudgeted.num_chunks

    def test_budgeted_stream_assembles_identically(self, tmp_path):
        hg = load_instance("sparsine", scale=0.3)
        path = tmp_path / "s.hgr"
        write_hmetis(hg, path)
        _assert_stream_matches(
            stream_hmetis(path, chunk_size=64, pin_budget=100), read_hmetis(path)
        )

    def test_budgeted_matrix_market_assembles_identically(self, tmp_path):
        m = sp.random(40, 30, density=0.2, random_state=5)
        path = tmp_path / "m.mtx"
        scipy.io.mmwrite(str(path), m)
        ref = read_matrix_market(path)
        _assert_stream_matches(
            stream_matrix_market(path, chunk_size=16, pin_budget=32), ref
        )

    def test_in_memory_pin_budget(self):
        hg = load_instance("stream_powerlaw_xl", scale=0.05)
        stream = HypergraphChunkStream(hg, 256, pin_budget=128)
        max_deg = int((hg.vertex_ptr[1:] - hg.vertex_ptr[:-1]).max())
        chunks = list(stream)
        assert sum(c.num_pins for c in chunks) == hg.num_pins
        assert max(c.num_pins for c in chunks) <= max(128, max_deg)
        assert assemble(HypergraphChunkStream(hg, 256, pin_budget=128)) == hg

    def test_chunk_bounds_consistent_with_iteration(self, tmp_path):
        hg = load_instance("sparsine", scale=0.2)
        path = tmp_path / "s.hgr"
        write_hmetis(hg, path)
        stream = stream_hmetis(path, chunk_size=64, pin_budget=80)
        for c, chunk in enumerate(stream):
            start, stop = stream.chunk_bounds(c)
            assert (chunk.start, chunk.stop) == (start, stop)
        assert stream.chunk_bounds(stream.num_chunks - 1)[1] == hg.num_vertices

    def test_iter_range_matches_full_iteration(self, tmp_path):
        hg = load_instance("sparsine", scale=0.2)
        path = tmp_path / "s.hgr"
        write_hmetis(hg, path)
        stream = stream_hmetis(path, chunk_size=32)
        full = [c.vertex_edges.tolist() for c in stream]
        lo, hi = 2, stream.num_chunks - 1
        part = [c.vertex_edges.tolist() for c in stream.iter_range(lo, hi)]
        assert part == full[lo:hi]

    def test_rejects_bad_budget(self, tmp_path):
        path = tmp_path / "t.hgr"
        path.write_text("1 2\n1 2\n")
        with pytest.raises(ValueError, match="pin_budget"):
            stream_hmetis(path, pin_budget=0)


class TestHypergraphChunkStream:
    def test_views_cover_hypergraph(self, tiny_hypergraph):
        stream = HypergraphChunkStream(tiny_hypergraph, chunk_size=4)
        back = assemble(stream)
        assert back == tiny_hypergraph

    def test_chunk_shapes(self, tiny_hypergraph):
        stream = HypergraphChunkStream(tiny_hypergraph, chunk_size=4)
        chunks = list(stream)
        assert [c.num_vertices for c in chunks] == [4, 2]
        assert chunks[0].start == 0 and chunks[1].start == 4
        assert sum(c.num_pins for c in chunks) == tiny_hypergraph.num_pins


@st.composite
def small_hypergraphs(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    num_edges = draw(st.integers(min_value=0, max_value=12))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(5, n)))
        edges.append(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=size,
                    max_size=size,
                )
            )
        )
    return Hypergraph(n, edges)


@settings(max_examples=40, deadline=None)
@given(hg=small_hypergraphs(), chunk_size=st.integers(min_value=1, max_value=8))
def test_stream_read_equivalence_property(hg, chunk_size, tmp_path_factory):
    """Any hypergraph: write -> stream -> assemble == write -> read."""
    path = tmp_path_factory.mktemp("prop") / "h.hgr"
    write_hmetis(hg, path)
    ref = read_hmetis(path)
    stream = stream_hmetis(path, chunk_size=chunk_size, buffer_pins=7)
    assert assemble(stream) == ref


class TestByteSources:
    """The file-object / byte-iterable entry point (service data path).

    Whatever shape the bytes arrive in — a path, an open text or binary
    file, one ``bytes`` blob, or an iterator of arbitrarily-split blocks
    (an HTTP request body) — the stream must be identical to the
    path-fed reference, with the same strict validation.
    """

    def _sources(self, raw):
        yield "bytes", raw
        yield "blocks", (raw[i : i + 7] for i in range(0, len(raw), 7))
        yield "empty-blocks", iter([b"", raw[:10], b"", raw[10:], b""])

    def test_hmetis_all_sources_match_path(self, tiny_hypergraph, tmp_path):
        path = tmp_path / "h.hgr"
        write_hmetis(tiny_hypergraph, path)
        raw = path.read_bytes()
        ref = read_hmetis(path)
        for label, source in self._sources(raw):
            got = assemble(stream_hmetis(source, chunk_size=2))
            assert got == ref, label
        with open(path, "rb") as fh:
            assert assemble(stream_hmetis(fh, chunk_size=2)) == ref
            assert not fh.closed, "caller-owned file must stay open"
        with open(path, "r") as fh:
            assert assemble(stream_hmetis(fh, chunk_size=2)) == ref
            assert not fh.closed

    def test_matrix_market_from_blocks(self, tmp_path):
        path = tmp_path / "m.mtx"
        scipy.io.mmwrite(str(path), sp.random(9, 13, density=0.25, random_state=0))
        raw = path.read_bytes()
        ref = read_matrix_market(path)
        blocks = (raw[i : i + 11] for i in range(0, len(raw), 11))
        got = assemble(stream_matrix_market(blocks, chunk_size=3))
        assert got.num_vertices == ref.num_vertices
        assert got.num_pins == ref.num_pins
        assert np.array_equal(got.vertex_edges, ref.vertex_edges)

    def test_non_path_source_has_no_source_path(self, tiny_hypergraph, tmp_path):
        path = tmp_path / "h.hgr"
        write_hmetis(tiny_hypergraph, path)
        stream = stream_hmetis(path.read_bytes())
        assert stream.source_path is None
        assert stream.name == "stream"
        named = stream_hmetis(path.read_bytes(), name="upload-7")
        assert named.name == "upload-7"

    def test_malformed_bytes_raise_with_stream_label(self):
        with pytest.raises(HypergraphFormatError, match=r"<stream>"):
            stream_hmetis(b"not a header\n")
        with pytest.raises(HypergraphFormatError, match=r"<job-1>"):
            stream_hmetis(b"not a header\n", name="job-1")

    def test_rejects_unusable_source(self):
        with pytest.raises(TypeError, match="source must be"):
            stream_hmetis(12345)
