"""Tests for the baseline partitioners (simple, FENNEL, multilevel RB)."""

import numpy as np
import pytest

from repro.architecture.cost import uniform_cost_matrix
from repro.core.metrics import hyperedge_cut, imbalance, partition_loads
from repro.hypergraph.model import Hypergraph
from repro.partitioning.fennel import FennelStreaming
from repro.partitioning.multilevel import MultilevelRB
from repro.partitioning.multilevel.coarsen import (
    coarsen_hierarchy,
    contract,
    heavy_connectivity_matching,
)
from repro.partitioning.multilevel.driver import induced_subhypergraph
from repro.partitioning.multilevel.fm import fm_refine, initial_gains
from repro.partitioning.multilevel.initial import bisection_cut, greedy_growing_bisection
from repro.partitioning.simple import (
    ContiguousPartitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
)


class TestSimplePartitioners:
    def test_round_robin(self, tiny_hypergraph):
        res = RoundRobinPartitioner().partition(tiny_hypergraph, 3)
        assert res.assignment.tolist() == [0, 1, 2, 0, 1, 2]

    def test_random_seeded(self, small_random):
        a = RandomPartitioner().partition(small_random, 4, seed=1).assignment
        b = RandomPartitioner().partition(small_random, 4, seed=1).assignment
        c = RandomPartitioner().partition(small_random, 4, seed=2).assignment
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_contiguous_blocks(self, tiny_hypergraph):
        res = ContiguousPartitioner().partition(tiny_hypergraph, 3)
        assert res.assignment.tolist() == [0, 0, 1, 1, 2, 2]

    def test_contiguous_weight_aware(self):
        hg = Hypergraph(4, [[0, 1]], vertex_weights=[10, 1, 1, 1])
        res = ContiguousPartitioner().partition(hg, 2)
        # vertex 0 alone carries most weight; boundary lands right after it
        loads = partition_loads(hg, res.assignment, 2)
        assert loads[0] == 10.0

    def test_part_sizes(self, tiny_hypergraph):
        res = RoundRobinPartitioner().partition(tiny_hypergraph, 4)
        assert res.part_sizes().sum() == 6


class TestFennel:
    def test_valid_and_balanced(self, small_random):
        res = FennelStreaming().partition(small_random, 8)
        assert res.assignment.min() >= 0 and res.assignment.max() < 8
        assert imbalance(small_random, res.assignment, 8) <= 1.25

    def test_beats_random_on_structure(self, two_cluster_hypergraph):
        hg = two_cluster_hypergraph
        fennel_cut = hyperedge_cut(
            hg, FennelStreaming().partition(hg, 2).assignment, 2
        )
        rand_cut = hyperedge_cut(
            hg, RandomPartitioner().partition(hg, 2, seed=0).assignment, 2
        )
        assert fennel_cut <= rand_cut

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FennelStreaming(gamma=1.0)
        with pytest.raises(ValueError):
            FennelStreaming(balance_slack=1.0)
        with pytest.raises(ValueError):
            FennelStreaming(stream_order="spiral")


class TestMatching:
    def test_symmetric_and_complete(self, small_mesh):
        match = heavy_connectivity_matching(small_mesh, seed=0)
        for v, m in enumerate(match):
            assert match[m] == v  # symmetric (self-matched included)

    def test_matches_connected_pairs(self, two_cluster_hypergraph):
        match = heavy_connectivity_matching(two_cluster_hypergraph, seed=0)
        for v, m in enumerate(match):
            if m != v:
                # matched vertices share at least one hyperedge
                shared = set(two_cluster_hypergraph.edges_of(v)) & set(
                    two_cluster_hypergraph.edges_of(m)
                )
                assert shared


class TestContract:
    def test_preserves_total_weight(self, small_mesh):
        match = heavy_connectivity_matching(small_mesh, seed=0)
        level = contract(small_mesh, match)
        assert level.hypergraph.total_vertex_weight() == pytest.approx(
            small_mesh.total_vertex_weight()
        )

    def test_vertex_map_valid(self, small_mesh):
        match = heavy_connectivity_matching(small_mesh, seed=0)
        level = contract(small_mesh, match)
        vm = level.vertex_map
        assert vm.shape == (small_mesh.num_vertices,)
        assert vm.min() >= 0
        assert vm.max() == level.hypergraph.num_vertices - 1

    def test_matched_pairs_merge(self):
        hg = Hypergraph(4, [[0, 1], [2, 3], [1, 2]])
        match = np.array([1, 0, 3, 2])
        level = contract(hg, match)
        assert level.hypergraph.num_vertices == 2
        # nets {0,1} and {2,3} collapse to singletons and are dropped;
        # net {1,2} becomes the single coarse net {0,1}
        assert level.hypergraph.num_edges == 1

    def test_parallel_nets_merge_weights(self):
        hg = Hypergraph(4, [[0, 2], [1, 3]], edge_weights=[2, 5])
        match = np.array([1, 0, 3, 2])
        level = contract(hg, match)
        assert level.hypergraph.num_edges == 1
        assert level.hypergraph.edge_weights[0] == 7.0

    def test_hierarchy_shrinks(self, small_mesh):
        levels = coarsen_hierarchy(small_mesh, min_vertices=40, seed=0)
        assert levels
        sizes = [small_mesh.num_vertices] + [
            l.hypergraph.num_vertices for l in levels
        ]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))


class TestInitialBisection:
    def test_bisection_cut_counts(self, tiny_hypergraph):
        side = np.array([0, 0, 0, 1, 1, 1], dtype=np.int8)
        # cut edges: {2,3} and {0,5} => 2
        assert bisection_cut(tiny_hypergraph, side) == 2.0

    def test_greedy_growing_hits_target(self, small_mesh):
        target = small_mesh.total_vertex_weight() / 2
        side = greedy_growing_bisection(small_mesh, target, seed=0)
        w0 = small_mesh.vertex_weights[side == 0].sum()
        assert abs(w0 - target) <= small_mesh.vertex_weights.max() + 1e-9

    def test_separates_clusters(self, two_cluster_hypergraph):
        side = greedy_growing_bisection(
            two_cluster_hypergraph, 5.0, trials=4, seed=0
        )
        assert bisection_cut(two_cluster_hypergraph, side) <= 1.0


class TestFM:
    def test_gains_match_definition(self, tiny_hypergraph):
        from repro.partitioning.multilevel.fm import _side_counts

        side = np.array([0, 0, 1, 1, 1, 0], dtype=np.int8)
        counts = _side_counts(tiny_hypergraph, side)
        gains = initial_gains(tiny_hypergraph, side, counts)
        # Moving a vertex and recomputing the cut must change it by -gain.
        base = bisection_cut(tiny_hypergraph, side)
        for v in range(6):
            flipped = side.copy()
            flipped[v] = 1 - flipped[v]
            assert bisection_cut(tiny_hypergraph, flipped) == pytest.approx(
                base - gains[v]
            )

    def test_never_worsens_cut(self, small_mesh):
        rng = np.random.default_rng(0)
        side = rng.integers(0, 2, small_mesh.num_vertices).astype(np.int8)
        before = bisection_cut(small_mesh, side)
        half = small_mesh.total_vertex_weight() / 2
        refined, after = fm_refine(small_mesh, side, (half, half), slack=1.1)
        assert after <= before + 1e-9
        assert after == pytest.approx(bisection_cut(small_mesh, refined))

    def test_respects_balance_caps(self, small_mesh):
        rng = np.random.default_rng(1)
        side = rng.integers(0, 2, small_mesh.num_vertices).astype(np.int8)
        half = small_mesh.total_vertex_weight() / 2
        refined, _ = fm_refine(small_mesh, side, (half, half), slack=1.05)
        w0 = small_mesh.vertex_weights[refined == 0].sum()
        assert w0 <= half * 1.05 + 1e-9
        assert (small_mesh.total_vertex_weight() - w0) <= half * 1.05 + 1e-9

    def test_repairs_degenerate_start(self, two_cluster_hypergraph):
        """FM must rebalance an all-on-one-side start."""
        hg = two_cluster_hypergraph
        side = np.zeros(hg.num_vertices, dtype=np.int8)
        refined, cut = fm_refine(hg, side, (5.0, 5.0), slack=1.1, max_passes=6)
        loads = [
            hg.vertex_weights[refined == 0].sum(),
            hg.vertex_weights[refined == 1].sum(),
        ]
        assert min(loads) > 0
        assert cut <= 1.0  # optimal separates the clusters

    def test_slack_validation(self, tiny_hypergraph):
        with pytest.raises(ValueError):
            fm_refine(tiny_hypergraph, np.zeros(6, dtype=np.int8), (3, 3), slack=1.0)


class TestInducedSubhypergraph:
    def test_extracts_pins_and_drops_small_nets(self, tiny_hypergraph):
        mask = np.array([True, True, True, False, False, False])
        sub, ids = induced_subhypergraph(tiny_hypergraph, mask)
        assert ids.tolist() == [0, 1, 2]
        # edges: {0,1,2} kept; {2,3}->{2} dropped; {3,4,5} dropped; {0,5}->{0} dropped
        assert sub.num_edges == 1
        assert sub.edge(0).tolist() == [0, 1, 2]

    def test_weights_carried(self):
        hg = Hypergraph(
            4, [[0, 1, 2], [1, 2, 3]], vertex_weights=[1, 2, 3, 4], edge_weights=[7, 9]
        )
        sub, ids = induced_subhypergraph(hg, np.array([False, True, True, True]))
        assert sub.vertex_weights.tolist() == [2.0, 3.0, 4.0]
        assert sub.edge_weights.tolist() == [7.0, 9.0]

    def test_bad_mask(self, tiny_hypergraph):
        with pytest.raises(ValueError):
            induced_subhypergraph(tiny_hypergraph, np.ones(3, dtype=bool))


class TestMultilevelRB:
    def test_valid_assignment(self, small_mesh):
        res = MultilevelRB().partition(small_mesh, 8, seed=0)
        assert res.assignment.shape == (small_mesh.num_vertices,)
        assert set(np.unique(res.assignment)) <= set(range(8))

    def test_balance(self, small_mesh):
        res = MultilevelRB(imbalance_tolerance=1.1).partition(small_mesh, 8, seed=0)
        assert imbalance(small_mesh, res.assignment, 8) <= 1.25

    def test_beats_random_cut(self, small_mesh):
        ml_cut = hyperedge_cut(
            small_mesh, MultilevelRB().partition(small_mesh, 8, seed=0).assignment, 8
        )
        rnd_cut = hyperedge_cut(
            small_mesh,
            RandomPartitioner().partition(small_mesh, 8, seed=0).assignment,
            8,
        )
        assert ml_cut < rnd_cut

    def test_separates_clusters(self, two_cluster_hypergraph):
        res = MultilevelRB().partition(two_cluster_hypergraph, 2, seed=0)
        assert hyperedge_cut(two_cluster_hypergraph, res.assignment, 2) <= 1.0

    def test_non_power_of_two_parts(self, small_mesh):
        res = MultilevelRB().partition(small_mesh, 6, seed=0)
        sizes = res.part_sizes()
        assert (sizes > 0).all()
        assert imbalance(small_mesh, res.assignment, 6) <= 1.3

    def test_deterministic_given_seed(self, small_random):
        a = MultilevelRB().partition(small_random, 4, seed=5).assignment
        b = MultilevelRB().partition(small_random, 4, seed=5).assignment
        assert np.array_equal(a, b)

    def test_single_part(self, tiny_hypergraph):
        res = MultilevelRB().partition(tiny_hypergraph, 1)
        assert np.all(res.assignment == 0)

    def test_ignores_cost_matrix(self, small_random):
        c = uniform_cost_matrix(4) * 1.5
        np.fill_diagonal(c, 0)
        a = MultilevelRB().partition(small_random, 4, seed=1, cost_matrix=c).assignment
        b = MultilevelRB().partition(small_random, 4, seed=1).assignment
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultilevelRB(imbalance_tolerance=0.5)
