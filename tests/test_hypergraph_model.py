"""Tests for the CSR hypergraph model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hypergraph.model import Hypergraph


class TestConstruction:
    def test_basic_counts(self, tiny_hypergraph):
        hg = tiny_hypergraph
        assert hg.num_vertices == 6
        assert hg.num_edges == 4
        assert hg.num_pins == 10

    def test_pins_sorted_and_deduped(self):
        hg = Hypergraph(5, [[3, 1, 3, 1, 2]])
        assert hg.edge(0).tolist() == [1, 2, 3]

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Hypergraph(3, [[0], []])

    def test_out_of_range_pin_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(3, [[0, 3]])
        with pytest.raises(ValueError):
            Hypergraph(3, [[-1, 0]])

    def test_zero_vertices_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(0, [])

    def test_no_edges_allowed(self):
        hg = Hypergraph(4, [])
        assert hg.num_edges == 0
        assert hg.degrees().tolist() == [0, 0, 0, 0]

    def test_isolated_vertices_allowed(self, tiny_hypergraph):
        hg = Hypergraph(10, [[0, 1]])
        assert hg.degrees()[5] == 0

    def test_arrays_are_frozen(self, tiny_hypergraph):
        with pytest.raises(ValueError):
            tiny_hypergraph.edge_pins[0] = 5

    def test_default_weights_are_unit(self, tiny_hypergraph):
        assert np.all(tiny_hypergraph.vertex_weights == 1.0)
        assert np.all(tiny_hypergraph.edge_weights == 1.0)

    def test_custom_weights(self):
        hg = Hypergraph(
            3, [[0, 1], [1, 2]], vertex_weights=[1, 2, 3], edge_weights=[5, 7]
        )
        assert hg.total_vertex_weight() == 6.0
        assert hg.edge_weights.tolist() == [5.0, 7.0]

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 1]], vertex_weights=[1, 0])
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 1]], edge_weights=[-1])

    def test_wrong_weight_shape_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [[0, 1]], vertex_weights=[1, 1, 1])


class TestIncidence:
    def test_both_directions_agree(self, tiny_hypergraph):
        tiny_hypergraph.validate()

    def test_edges_of(self, tiny_hypergraph):
        assert tiny_hypergraph.edges_of(0).tolist() == [0, 3]
        assert tiny_hypergraph.edges_of(2).tolist() == [0, 1]
        assert tiny_hypergraph.edges_of(1).tolist() == [0]

    def test_degrees_and_cardinalities(self, tiny_hypergraph):
        assert tiny_hypergraph.cardinalities().tolist() == [3, 2, 3, 2]
        assert tiny_hypergraph.degrees().tolist() == [2, 1, 2, 2, 1, 2]

    def test_incidence_matrix(self, tiny_hypergraph):
        inc = tiny_hypergraph.incidence_matrix()
        assert inc.shape == (4, 6)
        assert inc.sum() == tiny_hypergraph.num_pins
        dense = inc.toarray()
        assert dense[1].tolist() == [0, 0, 1, 1, 0, 0]

    def test_iter_edges(self, tiny_hypergraph):
        edges = [e.tolist() for e in tiny_hypergraph.iter_edges()]
        assert edges == [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5]]

    def test_to_edge_list_roundtrip(self, tiny_hypergraph):
        rebuilt = Hypergraph(6, tiny_hypergraph.to_edge_list())
        assert rebuilt == tiny_hypergraph


class TestFromCsrArrays:
    def test_matches_list_constructor(self, tiny_hypergraph):
        hg = Hypergraph.from_csr_arrays(
            6,
            np.array([0, 3, 5, 8, 10]),
            np.array([0, 1, 2, 2, 3, 3, 4, 5, 0, 5]),
        )
        assert hg == tiny_hypergraph

    def test_dedups_within_edges(self):
        hg = Hypergraph.from_csr_arrays(4, np.array([0, 4]), np.array([2, 1, 2, 1]))
        assert hg.edge(0).tolist() == [1, 2]

    def test_rejects_inconsistent_ptr(self):
        with pytest.raises(ValueError):
            Hypergraph.from_csr_arrays(4, np.array([0, 5]), np.array([0, 1]))
        with pytest.raises(ValueError):
            Hypergraph.from_csr_arrays(4, np.array([2, 3]), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            Hypergraph.from_csr_arrays(4, np.array([0, 2, 1]), np.array([0, 1]))

    def test_rejects_all_duplicate_empty(self):
        # An edge whose pins dedup to one vertex is fine; a ptr gap that is
        # empty from the start is not.
        with pytest.raises(ValueError, match="empty"):
            Hypergraph.from_csr_arrays(3, np.array([0, 0, 2]), np.array([0, 1]))


class TestFromSparse:
    def test_row_net(self):
        m = sp.csr_array(np.array([[1, 1, 0], [0, 1, 1]]))
        hg = Hypergraph.from_sparse(m, model="row-net")
        assert hg.num_vertices == 3  # columns
        assert hg.num_edges == 2  # rows
        assert hg.edge(0).tolist() == [0, 1]

    def test_column_net_is_transpose(self):
        m = sp.csr_array(np.array([[1, 1, 0], [0, 1, 1]]))
        hg = Hypergraph.from_sparse(m, model="column-net")
        assert hg.num_vertices == 2
        assert hg.num_edges == 3

    def test_empty_rows_dropped(self):
        m = sp.csr_array(np.array([[1, 1], [0, 0], [1, 0]]))
        hg = Hypergraph.from_sparse(m)
        assert hg.num_edges == 2

    def test_bad_model_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph.from_sparse(sp.eye(3), model="diagonal-net")


class TestTransforms:
    def test_with_weights_shares_structure(self, tiny_hypergraph):
        hg2 = tiny_hypergraph.with_weights(vertex_weights=np.arange(1.0, 7.0))
        assert hg2.edge_ptr is tiny_hypergraph.edge_ptr
        assert hg2.total_vertex_weight() == 21.0
        # original untouched
        assert tiny_hypergraph.total_vertex_weight() == 6.0

    def test_without_singletons(self):
        hg = Hypergraph(4, [[0], [0, 1], [2], [2, 3]])
        cleaned = hg.without_singleton_edges()
        assert cleaned.num_edges == 2
        assert cleaned.cardinalities().tolist() == [2, 2]

    def test_without_singletons_noop(self, tiny_hypergraph):
        assert tiny_hypergraph.without_singleton_edges() is tiny_hypergraph


class TestDunder:
    def test_equality(self, tiny_hypergraph):
        other = Hypergraph(6, [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5]])
        assert other == tiny_hypergraph
        assert hash(other) == hash(tiny_hypergraph)

    def test_inequality(self, tiny_hypergraph):
        assert Hypergraph(6, [[0, 1]]) != tiny_hypergraph
        assert tiny_hypergraph != "not a hypergraph"

    def test_repr(self, tiny_hypergraph):
        assert "tiny" in repr(tiny_hypergraph)
        assert "|V|=6" in repr(tiny_hypergraph)
