"""Tests for the hierarchical machine topology."""

import numpy as np
import pytest

from repro.architecture.topology import (
    MachineTopology,
    archer_like_topology,
    fat_tree_topology,
    flat_topology,
)


class TestMachineTopology:
    def test_num_units(self):
        topo = MachineTopology(("a", "b"), (3, 4))
        assert topo.num_units == 12
        assert topo.num_classes == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineTopology(("a",), (3, 4))
        with pytest.raises(ValueError):
            MachineTopology((), ())
        with pytest.raises(ValueError):
            MachineTopology(("a",), (0,))

    def test_coordinates(self):
        topo = MachineTopology(("proc", "node"), (4, 2))
        assert topo.coordinates(0) == (0, 0)
        assert topo.coordinates(3) == (0, 0)
        assert topo.coordinates(4) == (1, 0)
        assert topo.coordinates(7) == (1, 0)
        with pytest.raises(ValueError):
            topo.coordinates(8)

    def test_distance_class(self):
        topo = MachineTopology(("proc", "node"), (4, 2))
        assert topo.distance_class(0, 0) == 0
        assert topo.distance_class(0, 3) == 1  # same processor
        assert topo.distance_class(0, 4) == 2  # same node, other processor
        assert topo.distance_class(3, 4) == 2

    def test_class_matrix_matches_scalar(self):
        topo = MachineTopology(("a", "b", "c"), (2, 3, 2))
        mat = topo.class_matrix()
        for i in range(topo.num_units):
            for j in range(topo.num_units):
                assert mat[i, j] == topo.distance_class(i, j)

    def test_class_matrix_symmetric(self):
        mat = archer_like_topology(num_nodes=2).class_matrix()
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_class_names(self):
        topo = archer_like_topology(num_nodes=2)
        names = topo.class_names()
        assert names[0] == "self"
        assert "processor" in names[1]

    def test_describe(self):
        assert "48" in archer_like_topology(num_nodes=2).describe()


class TestPresets:
    def test_archer_single_blade(self):
        topo = archer_like_topology(num_nodes=4)
        assert topo.num_units == 96
        assert len(topo.arities) == 3  # processor, node, blade

    def test_archer_multi_blade(self):
        topo = archer_like_topology(num_nodes=8)
        assert topo.num_units == 192
        assert len(topo.arities) == 4  # + group level

    def test_archer_paper_scale(self):
        # The paper's job: 576 cores over 24 nodes in 6 blades.
        topo = archer_like_topology(num_nodes=24)
        assert topo.num_units == 576

    def test_archer_rounds_up_partial_blades(self):
        topo = archer_like_topology(num_nodes=6)
        assert topo.num_units == 192  # rounded to 2 full blades

    def test_fat_tree(self):
        topo = fat_tree_topology(cores=8, nodes=2, racks=3)
        assert topo.num_units == 48

    def test_flat(self):
        topo = flat_topology(16)
        assert topo.num_units == 16
        assert topo.num_classes == 2
        mat = topo.class_matrix()
        off = ~np.eye(16, dtype=bool)
        assert np.all(mat[off] == 1)
