"""Documentation integrity: links resolve, anchors exist, docs match spec.

This is what the CI ``docs`` job runs (alongside the example scripts):

* every relative markdown link in README.md and docs/*.md must point at
  a file that exists, and the README must actually link the docs tree;
* every intra-repo ``#anchor`` must name a real heading (GitHub
  slugging), so refactoring a section title cannot silently break
  cross-references;
* ``docs/service.md`` is **generated-checked** against the service's
  handwritten OpenAPI contract (``GET /v1/openapi.json``): the
  documented routes, the status codes under each route, and every
  schema field must match the spec exactly — in both directions.

External (http/https) links are out of scope — CI should not depend on
the network.
"""

import re
from pathlib import Path

import pytest

from repro.service.openapi import openapi_spec

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for our hand-written markdown
#: (no reference-style links, no angle-bracket targets in these files).
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

#: ``## METHOD /path`` operation headings in docs/service.md.
_ROUTE_HEADING = re.compile(r"^## (GET|POST|PUT|DELETE) (/\S+)$", re.M)


def _doc_files() -> "list[Path]":
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def _all_links(path: Path) -> "list[str]":
    targets = _LINK.findall(path.read_text())
    return [
        t
        for t in targets
        if not t.startswith(("http://", "https://", "mailto:"))
    ]


def _relative_links(path: Path) -> "list[str]":
    return [t for t in _all_links(path) if not t.startswith("#")]


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, punctuation dropped, spaces->dashes."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _heading_anchors(path: Path) -> "set[str]":
    """Every anchor a markdown file exposes (with GitHub's -n dedup)."""
    slugs = []
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = re.match(r"^#{1,6}\s+(.+?)\s*$", line)
        if m:
            slugs.append(_github_slug(m.group(1)))
    anchors = set()
    seen: "dict[str, int]" = {}
    for slug in slugs:
        if slug in seen:
            seen[slug] += 1
            anchors.add(f"{slug}-{seen[slug]}")
        else:
            seen[slug] = 0
            anchors.add(slug)
    return anchors


# ----------------------------------------------------------------------
# link + anchor integrity
# ----------------------------------------------------------------------
def test_docs_tree_exists():
    assert (REPO / "docs" / "README.md").is_file()
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "formats.md").is_file()
    assert (REPO / "docs" / "service.md").is_file()
    assert (REPO / "docs" / "cluster.md").is_file()
    assert (REPO / "docs" / "performance.md").is_file()


@pytest.mark.parametrize("path", _doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(path):
    for target in _relative_links(path):
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        assert resolved.exists(), f"{path.name}: broken link -> {target}"


@pytest.mark.parametrize("path", _doc_files(), ids=lambda p: p.name)
def test_intra_repo_anchors_resolve(path):
    """``file#anchor`` and ``#anchor`` links must name real headings."""
    for target in _all_links(path):
        if "#" not in target:
            continue
        file_part, anchor = target.split("#", 1)
        dest = path if not file_part else (path.parent / file_part).resolve()
        if dest.suffix != ".md" or not dest.exists():
            continue
        assert anchor in _heading_anchors(dest), (
            f"{path.name}: stale anchor -> {target}"
        )


def test_readme_links_docs_tree():
    links = _relative_links(REPO / "README.md")
    assert "docs/README.md" in links
    assert "docs/architecture.md" in links
    assert "docs/formats.md" in links
    assert "docs/service.md" in links
    assert "docs/cluster.md" in links


def test_examples_are_referenced_and_present():
    readme = (REPO / "README.md").read_text()
    for example in ("chunkstore_restream", "service_quickstart"):
        assert (REPO / "examples" / f"{example}.py").is_file()
        assert example in readme


# ----------------------------------------------------------------------
# docs/service.md <-> openapi.json
# ----------------------------------------------------------------------
def _service_doc() -> str:
    return (REPO / "docs" / "service.md").read_text()


def _doc_operations() -> "dict[tuple[str, str], str]":
    """``{(method, path): section_text}`` from the route headings."""
    text = _service_doc()
    matches = list(_ROUTE_HEADING.finditer(text))
    sections = {}
    for i, m in enumerate(matches):
        start = m.end()
        next_h2 = text.find("\n## ", start)
        end = matches[i + 1].start() if i + 1 < len(matches) else next_h2
        if next_h2 != -1 and next_h2 < end:
            end = next_h2
        sections[(m.group(1).lower(), m.group(2))] = text[start:end]
    return sections


def test_service_doc_routes_match_spec():
    """Every spec route is documented and vice versa — exact diff."""
    spec = openapi_spec()
    spec_routes = {
        (method, path)
        for path, ops in spec["paths"].items()
        for method in ops
    }
    doc_routes = set(_doc_operations())
    assert doc_routes == spec_routes, (
        f"doc-only: {doc_routes - spec_routes}; "
        f"spec-only: {spec_routes - doc_routes}"
    )


def test_service_doc_status_codes_match_spec():
    """Each route section documents exactly the spec's response codes."""
    spec = openapi_spec()
    for (method, path), section in _doc_operations().items():
        spec_codes = set(spec["paths"][path][method]["responses"])
        doc_codes = set(re.findall(r"`(\d{3})`", section))
        assert doc_codes == spec_codes, (
            f"{method.upper()} {path}: doc codes {sorted(doc_codes)} != "
            f"spec codes {sorted(spec_codes)}"
        )


def test_service_doc_schema_fields_match_spec():
    """Every schema property in the spec appears (backticked) in the doc,
    and every schema has its own section."""
    spec = openapi_spec()
    doc = _service_doc()
    for name, schema in spec["components"]["schemas"].items():
        assert f"### `{name}`" in doc or f"`{name}`" in doc, (
            f"schema {name} is not documented"
        )
        for prop in schema.get("properties", {}):
            assert f"`{prop}`" in doc, (
                f"schema {name}: field {prop!r} missing from docs/service.md"
            )


def test_service_doc_parameters_match_spec():
    """Every query parameter the spec declares appears in the doc."""
    spec = openapi_spec()
    doc = _service_doc()
    for path, ops in spec["paths"].items():
        for method, op in ops.items():
            for param in op.get("parameters", []):
                assert f"`{param['name']}`" in doc, (
                    f"{method.upper()} {path}: parameter "
                    f"{param['name']!r} missing from docs/service.md"
                )
