"""Documentation integrity: every relative link in README/docs resolves.

This is what the CI ``docs`` job runs (alongside the chunk-store
example): markdown links in README.md and docs/*.md that point at files
in the repository must point at files that exist, and the README must
actually link the docs tree.  External (http/https) links and intra-page
anchors are out of scope — CI should not depend on the network.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for our hand-written markdown
#: (no reference-style links, no angle-bracket targets in these files).
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _doc_files() -> "list[Path]":
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def _relative_links(path: Path) -> "list[str]":
    targets = _LINK.findall(path.read_text())
    return [
        t
        for t in targets
        if not t.startswith(("http://", "https://", "mailto:", "#"))
    ]


def test_docs_tree_exists():
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "formats.md").is_file()


@pytest.mark.parametrize("path", _doc_files(), ids=lambda p: p.name)
def test_relative_links_resolve(path):
    for target in _relative_links(path):
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        assert resolved.exists(), f"{path.name}: broken link -> {target}"


def test_readme_links_docs_tree():
    links = _relative_links(REPO / "README.md")
    assert "docs/architecture.md" in links
    assert "docs/formats.md" in links


def test_example_is_referenced_and_present():
    assert (REPO / "examples" / "chunkstore_restream.py").is_file()
    assert "chunkstore_restream" in (REPO / "README.md").read_text()
