"""Wire-protocol tests for the cluster layer (socketpair/loopback only).

Pins the frame format and the :class:`ProtocolError` taxonomy: codec
roundtrips (arrays stay arrays, ``bytes`` stay ``bytes`` even though
both travel as raw sections), truncated frames, protocol-version
mismatch, oversized-frame rejection *before* allocation, bad magic —
and the coordinator-facing failure semantics: a worker disconnecting
mid-ingest or mid-round degrades (or fails loudly under
``on_loss="fail"``) within the socket timeout, never hanging.
"""

import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME,
    FLAG_ZLIB,
    HEADER,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    BadMagicError,
    ConnectionClosedError,
    CorruptFrameError,
    OversizedFrameError,
    ProtocolError,
    TruncatedFrameError,
    VersionMismatchError,
    base_from_spec,
    decode_payload,
    encode_payload,
    frame,
    hmac_proof,
    negotiate_version,
    recv_message,
    send_message,
)
from repro.core.config import HyperPRAWConfig
from repro.streaming import BufferedRestreamer, OnePassStreamer

#: generous guard so a protocol bug surfaces as an error, never a hang
TIMEOUT = 10.0


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    a.settimeout(TIMEOUT)
    b.settimeout(TIMEOUT)
    yield a, b
    a.close()
    b.close()


class TestPayloadCodec:
    def test_roundtrip_nested(self):
        message = {
            "type": "reply",
            "none": None,
            "flag": True,
            "pi": 3.25,
            "n": 7,
            "text": "héllo",
            "list": [1, [2, {"deep": np.arange(5, dtype=np.int64)}]],
            "f32": np.linspace(0, 1, 7, dtype=np.float32).reshape(7, 1),
            "empty": np.empty((0, 3), dtype=np.float64),
        }
        out = decode_payload(encode_payload(message))
        assert out["type"] == "reply" and out["none"] is None
        assert out["flag"] is True and out["pi"] == 3.25 and out["n"] == 7
        assert out["text"] == "héllo"
        np.testing.assert_array_equal(out["list"][1][1]["deep"], np.arange(5))
        assert out["f32"].dtype == np.float32 and out["f32"].shape == (7, 1)
        assert out["empty"].shape == (0, 3)

    def test_bytes_and_uint8_arrays_stay_distinct(self):
        """Both travel as raw uint8 sections; the placeholder — not the
        dtype — decides what comes back (a genuine uint8 array must not
        be misdecoded as bytes)."""
        message = {"blob": b"\x00\x01raw", "arr": np.array([0, 1], np.uint8)}
        out = decode_payload(encode_payload(message))
        assert isinstance(out["blob"], bytes) and out["blob"] == b"\x00\x01raw"
        assert isinstance(out["arr"], np.ndarray)
        assert out["arr"].dtype == np.uint8

    def test_decoded_arrays_are_writable_copies(self):
        out = decode_payload(encode_payload({"a": np.zeros(4)}))
        out["a"][0] = 1.0  # the round protocol mutates merged counts

    def test_numpy_scalars_decay_to_python(self):
        out = decode_payload(encode_payload({"x": np.int64(3), "y": np.float32(0.5)}))
        assert out["x"] == 3 and isinstance(out["x"], int)
        assert out["y"] == 0.5 and isinstance(out["y"], float)

    def test_unencodable_type_raises(self):
        with pytest.raises(ProtocolError, match="cannot encode"):
            encode_payload({"bad": object()})

    def test_truncated_payload_raises(self):
        payload = encode_payload({"a": np.arange(100)})
        with pytest.raises(TruncatedFrameError):
            decode_payload(payload[:2])
        with pytest.raises(TruncatedFrameError):
            decode_payload(payload[:20])
        with pytest.raises(TruncatedFrameError):
            decode_payload(payload[:-1])


class TestFraming:
    def _deliver(self, pair, data: bytes):
        a, b = pair
        a.sendall(data)
        a.close()
        return b

    def test_send_recv_roundtrip(self, pair):
        a, b = pair
        nbytes = send_message(a, {"type": "ping", "arr": np.arange(3)})
        message, wire = recv_message(b)
        assert message["type"] == "ping"
        np.testing.assert_array_equal(message["arr"], np.arange(3))
        assert wire == nbytes > HEADER.size

    def test_clean_eof_between_frames(self, pair):
        b = self._deliver(pair, b"")
        with pytest.raises(ConnectionClosedError):
            recv_message(b)

    def test_truncated_header(self, pair):
        b = self._deliver(pair, frame(encode_payload({"t": 1}))[: HEADER.size - 3])
        with pytest.raises(TruncatedFrameError):
            recv_message(b)

    def test_truncated_body(self, pair):
        b = self._deliver(pair, frame(encode_payload({"t": 1}))[:-5])
        with pytest.raises(TruncatedFrameError):
            recv_message(b)

    def test_version_mismatch(self, pair):
        b = self._deliver(
            pair, frame(encode_payload({"t": 1}), version=PROTOCOL_VERSION + 1)
        )
        with pytest.raises(
            VersionMismatchError, match=f"protocol v{PROTOCOL_VERSION + 1}"
        ):
            recv_message(b)

    def test_bad_magic(self, pair):
        data = frame(encode_payload({"t": 1}))
        b = self._deliver(pair, b"GET /" + data[5:])
        with pytest.raises(BadMagicError):
            recv_message(b)

    def test_oversized_frame_rejected_before_payload(self, pair):
        """The bound trips on the *declared* length — only the header
        needs to arrive, no payload allocation happens."""
        a, b = pair
        a.sendall(HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, 0, 1 << 40))
        with pytest.raises(OversizedFrameError, match=str(1 << 40)):
            recv_message(b)  # payload never sent: must not block on it

    def test_receiver_max_frame_bound(self, pair):
        a, b = pair
        a.sendall(frame(encode_payload({"big": np.zeros(1024, np.uint8)})))
        with pytest.raises(OversizedFrameError):
            recv_message(b, max_frame=64)

    def test_default_bound_is_sane(self):
        assert DEFAULT_MAX_FRAME == 1 << 30
        assert HEADER.format == "<4sHHQ"
        assert HEADER.size == struct.calcsize("<4sHHQ") == 16


class TestBaseFromSpec:
    def test_onepass_roundtrip(self):
        base = OnePassStreamer(
            alpha=0.7,
            presence_threshold=2,
            balance_slack=1.3,
            max_tracked_edges=123,
            scorer="fennel",
            gamma=1.25,
        )
        rebuilt = base_from_spec(base._shard_spec())
        assert isinstance(rebuilt, OnePassStreamer)
        for attr in (
            "alpha",
            "presence_threshold",
            "balance_slack",
            "max_tracked_edges",
            "score_mode",
            "scorer",
            "gamma",
        ):
            assert getattr(rebuilt, attr) == getattr(base, attr), attr

    def test_buffered_roundtrip(self):
        base = BufferedRestreamer(
            HyperPRAWConfig(max_iterations=17, record_history=False),
            buffer_size=96,
            max_tracked_edges=77,
        )
        rebuilt = base_from_spec(base._shard_spec())
        assert isinstance(rebuilt, BufferedRestreamer)
        assert rebuilt.buffer_size == 96
        assert rebuilt.max_tracked_edges == 77
        assert rebuilt.config.max_iterations == 17
        assert rebuilt.workers == 1  # remote bases never fork recursively

    def test_unknown_kind_raises(self):
        with pytest.raises(ProtocolError, match="unknown base"):
            base_from_spec({"kind": "quantum"})


def _full_hello(**overrides):
    """A minimal but complete coordinator hello for a 1-shard session."""
    hello = {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "max_version": PROTOCOL_VERSION,
        "shard_index": 0,
        "nshards": 1,
        "num_parts": 2,
        "num_vertices": 8,
        "counts": [1, 1],
        "total_weight": 8.0,
        "seed_entropy": 7,
        "seed_spawn_key": [],
        "base": OnePassStreamer()._shard_spec(),
        "profile": {"use_edge_weights": False},
        "C": 4.0,
        "edge_weights": np.ones(4),
        "edge_degrees": np.full(4, 2.0),
        "boundary_ship": "boundary",
        "ship": "chunks",
        "chunk_size": 4,
        "lo": 0,
        "hi": 2,
        "v_lo": 0,
        "v_hi": 8,
        "shard_weight": 8.0,
    }
    hello.update(overrides)
    return hello


class TestWorkerSessionFailures:
    """Worker-side protocol handling over a live (threaded) worker."""

    @pytest.fixture()
    def worker(self):
        from repro.cluster.worker import ClusterWorker

        w = ClusterWorker("127.0.0.1", 0, seed=5)
        thread = w.start_in_thread()
        yield w
        w.stop()
        thread.join(timeout=TIMEOUT)
        assert not thread.is_alive()

    def _connect(self, worker):
        sock = socket.create_connection(
            ("127.0.0.1", worker.port), timeout=TIMEOUT
        )
        sock.settimeout(TIMEOUT)
        return sock

    def test_worker_reports_bad_first_frame(self, worker):
        with self._connect(worker) as sock:
            send_message(sock, {"type": "round", "kind": "pass", "ctl": None})
            reply, _ = recv_message(sock)
            assert reply["type"] == "error"
            assert "hello" in reply["error"]

    def test_worker_survives_version_mismatch(self, worker):
        with self._connect(worker) as sock:
            sock.sendall(
                frame(
                    encode_payload({"type": "hello"}),
                    version=PROTOCOL_VERSION + 9,
                )
            )
            reply, _ = recv_message(sock)
            assert reply["type"] == "error"
        # the accept loop must still be alive for the next peer
        with self._connect(worker) as sock:
            send_message(sock, {"type": "shutdown"})
            reply, _ = recv_message(sock)
            assert reply["type"] == "bye"

    def test_worker_survives_disconnect_during_ingest(self, worker):
        sock = self._connect(worker)
        send_message(sock, _full_hello())
        ack, _ = recv_message(sock)
        assert ack["type"] == "hello_ack"
        assert ack["version"] == PROTOCOL_VERSION
        assert ack["worker_seed"] == 5
        sock.close()  # hang up mid-ingest, before any chunk arrives
        # worker must be back in its accept loop, not wedged in recv
        with self._connect(worker) as sock2:
            send_message(sock2, {"type": "shutdown"})
            reply, _ = recv_message(sock2)
            assert reply["type"] == "bye"

    def test_worker_negotiates_down_for_v1_hello(self, worker):
        """A v1 coordinator sends no ``max_version``: the session must
        run at v1, uncompressed, even if the hello asks for zlib."""
        hello = _full_hello(compress=True)
        del hello["max_version"]
        with self._connect(worker) as sock:
            send_message(sock, hello, version=1)
            ack, _ = recv_message(sock)
            assert ack["type"] == "hello_ack"
            assert ack["version"] == 1
            assert not ack.get("compress", False)

    def test_worker_survives_fuzzed_first_frames(self, worker):
        """Garbage first frames (bad magic, corrupt header, random
        bytes) must never wedge the accept loop — each hostile peer is
        dropped and the next honest one is served."""
        rng = np.random.default_rng(0xF055)
        hostile = [
            b"GET / HTTP/1.1\r\n\r\n",
            HEADER.pack(b"HPCL", PROTOCOL_VERSION, 0xFFFF, 64) + b"\x00" * 64,
            HEADER.pack(b"HPCL", PROTOCOL_VERSION, FLAG_ZLIB, 32)
            + b"not a zlib stream at all!!!!!!!!",
            rng.integers(0, 256, size=200, dtype=np.uint8).tobytes(),
            frame(encode_payload({"type": "hello"}))[:11],  # half a header
        ]
        for data in hostile:
            with self._connect(worker) as sock:
                sock.sendall(data)
                # the worker either reports an error frame or just
                # hangs up; both are fine — reading until EOF bounds it
                try:
                    while sock.recv(1 << 16):
                        pass
                except OSError:
                    pass
        with self._connect(worker) as sock:
            send_message(sock, {"type": "shutdown"})
            reply, _ = recv_message(sock)
            assert reply["type"] == "bye"


class TestCoordinatorNeverHangs:
    """Mid-round worker loss: degrade-or-fail within the timeout."""

    def _run(self, on_loss, die_after_rounds=2):
        """Partition against one real worker and one saboteur that
        accepts the session but drops the socket after N round frames."""
        from repro.cluster import DistributedStreamer
        from repro.cluster.worker import ClusterWorker
        from repro.hypergraph.generators import powerlaw_hypergraph
        from repro.streaming import HypergraphChunkStream

        class Saboteur(ClusterWorker):
            def _run_session(self, conn, hello):
                send_message(
                    conn,
                    {
                        "type": "hello_ack",
                        "version": PROTOCOL_VERSION,
                        "shard_index": hello["shard_index"],
                        "worker_seed": self.seed,
                        "seed_entropy": hello["seed_entropy"],
                    },
                )
                stream = self._ingest(conn, hello)
                close = getattr(stream, "close", None)
                seen = 0
                while seen < die_after_rounds:
                    msg, _ = recv_message(conn, max_frame=self.max_frame)
                    if msg["type"] == "round":
                        seen += 1
                if close is not None:
                    close()
                conn.close()  # vanish mid-round without a reply
                # surface as a lost session so the accept loop survives
                raise ConnectionClosedError("saboteur dropped the link")

        hg = powerlaw_hypergraph(260, 320, 3.0, seed=4, name="proto-hang")
        good, bad = ClusterWorker("127.0.0.1", 0), Saboteur("127.0.0.1", 0)
        threads = [good.start_in_thread(), bad.start_in_thread()]
        try:
            streamer = DistributedStreamer(
                OnePassStreamer(),
                hosts=[
                    ("127.0.0.1", good.port),
                    ("127.0.0.1", bad.port),
                ],
                timeout=TIMEOUT,
                on_loss=on_loss,
                reconnect=False,
                chunk_size=32,
            )
            stream = HypergraphChunkStream(hg, 32)
            return streamer.partition_stream(stream, 4, seed=13)
        finally:
            good.stop()
            bad.stop()
            for thread in threads:
                thread.join(timeout=TIMEOUT)
                assert not thread.is_alive()

    def test_midround_loss_degrades_to_identical_result(self):
        from repro.hypergraph.generators import powerlaw_hypergraph
        from repro.streaming import HypergraphChunkStream, ShardedStreamer

        done = {}

        def target():
            done["result"] = self._run("degrade")

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(timeout=60.0)  # the deadlock bound
        assert not thread.is_alive(), "coordinator hung after worker loss"
        result = done["result"]
        assert result.metadata["degraded_shards"] == [1]
        hg = powerlaw_hypergraph(260, 320, 3.0, seed=4, name="proto-hang")
        golden = ShardedStreamer(
            OnePassStreamer(), workers=2, chunk_size=32
        ).partition_stream(HypergraphChunkStream(hg, 32), 4, seed=13)
        np.testing.assert_array_equal(result.assignment, golden.assignment)

    def test_midround_loss_fails_loudly(self):
        with pytest.raises(RuntimeError, match="lost \\(shard 1\\)"):
            self._run("fail")


class TestCompression:
    """The v2 zlib frame flag: honest, bounded, bit-transparent."""

    def _flags(self, data: bytes) -> int:
        return HEADER.unpack(data[: HEADER.size])[2]

    def test_compressed_roundtrip_is_transparent(self, pair):
        a, b = pair
        message = {
            "type": "round",
            "rows": np.zeros((64, 8)),  # very compressible
            "note": "x" * 512,
        }
        nbytes = send_message(a, message, compress=True)
        out, wire = recv_message(b)
        assert out["note"] == "x" * 512
        np.testing.assert_array_equal(out["rows"], np.zeros((64, 8)))
        # it actually compressed: far fewer wire bytes than the payload
        assert wire == nbytes < len(encode_payload(message))

    def test_flag_is_set_only_when_it_helps(self):
        compressible = encode_payload({"z": np.zeros(1024)})
        assert self._flags(frame(compressible, compress=True)) & FLAG_ZLIB
        rng = np.random.default_rng(11)
        noise = encode_payload(
            {"r": rng.integers(0, 256, 4096, dtype=np.uint8)}
        )
        # incompressible: ships raw, flag honest
        assert not self._flags(frame(noise, compress=True)) & FLAG_ZLIB

    def test_tiny_payloads_ship_raw(self):
        tiny = encode_payload({"t": 1})
        framed = frame(tiny, compress=True)
        assert not self._flags(framed) & FLAG_ZLIB
        assert framed.endswith(tiny)

    def test_v1_frames_never_compress(self):
        payload = encode_payload({"z": np.zeros(4096)})
        framed = frame(payload, version=1, compress=True)
        assert not self._flags(framed) & FLAG_ZLIB
        assert framed.endswith(payload)

    def test_zlib_garbage_is_corrupt_frame(self, pair):
        a, b = pair
        bogus = b"definitely not a deflate stream, but a whole frame"
        a.sendall(
            HEADER.pack(PROTOCOL_MAGIC, 2, FLAG_ZLIB, len(bogus)) + bogus
        )
        with pytest.raises(CorruptFrameError, match="inflate"):
            recv_message(b)

    def test_unknown_flag_bits_rejected(self, pair):
        a, b = pair
        payload = encode_payload({"t": 1})
        a.sendall(HEADER.pack(PROTOCOL_MAGIC, 2, 0x8000, len(payload)) + payload)
        with pytest.raises(CorruptFrameError, match="unknown frame flags"):
            recv_message(b)

    def test_compressed_flag_on_v1_rejected(self, pair):
        a, b = pair
        packed = zlib.compress(encode_payload({"t": 1}), 1)
        a.sendall(HEADER.pack(PROTOCOL_MAGIC, 1, FLAG_ZLIB, len(packed)) + packed)
        with pytest.raises(CorruptFrameError, match="v1 frame"):
            recv_message(b)

    def test_decompression_bomb_bounded(self, pair):
        """A tiny wire frame that inflates past ``max_frame`` must be
        rejected *after* inflation is measured, before decode."""
        a, b = pair
        packed = zlib.compress(b"\x00" * 200_000, 9)  # ~200 wire bytes
        a.sendall(HEADER.pack(PROTOCOL_MAGIC, 2, FLAG_ZLIB, len(packed)) + packed)
        with pytest.raises(OversizedFrameError, match="inflates"):
            recv_message(b, max_frame=65536)


class TestNegotiation:
    def test_negotiate_version_rules(self):
        assert negotiate_version(None) == 1  # a v1 peer says nothing
        assert negotiate_version(1) == 1
        assert negotiate_version(2) == 2
        assert negotiate_version(99) == PROTOCOL_VERSION  # future peer
        assert negotiate_version(0) == 1  # nonsense clamps, not crashes
        with pytest.raises(CorruptFrameError, match="max_version"):
            negotiate_version("banana")

    def test_hmac_proof_separates_roles_and_nonces(self):
        psk, nc, nw = b"secret", b"c" * 16, b"w" * 16
        w = hmac_proof(psk, "worker", nc, nw)
        assert w == hmac_proof(psk, "worker", nc, nw)  # deterministic
        assert w != hmac_proof(psk, "coord", nc, nw)  # no reflection
        assert w != hmac_proof(psk, "worker", nw, nc)  # nonce order
        assert w != hmac_proof(b"other", "worker", nc, nw)
        assert len(w) == 32  # SHA-256


class TestProtocolFuzz:
    """Property tests: *any* corruption of a valid frame must land in
    the :class:`ProtocolError` taxonomy — never a hang, never a raw
    ``json``/``zlib``/``struct``/``numpy`` exception leaking through,
    and (because decode happens before any state is touched) never a
    partially-applied message."""

    def _frames(self):
        payload = encode_payload(
            {
                "type": "round",
                "kind": "pass",
                "ctl": {
                    "alpha": 0.5,
                    "rows": np.arange(64, dtype=np.float64).reshape(8, 8),
                },
            }
        )
        return [
            frame(payload, version=1),
            frame(payload, version=2),
            frame(payload, version=2, compress=True),
        ]

    def _recv_bytes(self, data: bytes):
        """Deliver raw bytes then EOF; receive with the guard timeout."""
        a, b = socket.socketpair()
        try:
            a.settimeout(TIMEOUT)
            b.settimeout(TIMEOUT)
            a.sendall(data)
            a.close()
            return recv_message(b)
        finally:
            b.close()

    def test_truncation_at_every_offset(self):
        """Cutting a valid frame at *every* byte offset is either a
        clean EOF (cut at 0) or a truncated frame — nothing else, and
        no cut may hang or return a message."""
        for data in self._frames():
            for cut in range(len(data)):
                expected = (
                    ConnectionClosedError if cut == 0 else TruncatedFrameError
                )
                with pytest.raises(expected):
                    self._recv_bytes(data[:cut])

    def test_every_header_bit_flip_is_taxonomy_error(self):
        """Flipping any single bit of the 16-byte header must raise a
        ProtocolError subclass: magic bits → BadMagic, version bits →
        VersionMismatch, flag bits → CorruptFrame, length bits →
        Oversized/Truncated/Corrupt.  No flip may decode successfully
        (the payload length is exact, so any length change breaks the
        section arithmetic)."""
        for data in self._frames():
            for byte in range(HEADER.size):
                for bit in range(8):
                    mutated = bytearray(data)
                    mutated[byte] ^= 1 << bit
                    with pytest.raises(ProtocolError):
                        self._recv_bytes(bytes(mutated))

    def test_random_corruption_never_leaks_or_hangs(self):
        """Seeded random byte corruption (with random truncation mixed
        in): every outcome is either a taxonomy error or — when the
        flips land entirely inside array section bytes — a message that
        decodes to different *values*.  No other exception type, no
        hang."""
        rng = np.random.default_rng(0xBADF)
        frames = self._frames()
        for trial in range(300):
            data = bytearray(frames[trial % len(frames)])
            for _ in range(int(rng.integers(1, 9))):
                pos = int(rng.integers(0, len(data)))
                data[pos] ^= int(rng.integers(1, 256))
            if rng.random() < 0.3:
                data = data[: int(rng.integers(0, len(data)))]
            try:
                message, _ = self._recv_bytes(bytes(data))
            except ProtocolError:
                continue
            # survivable corruption: the frame still decoded — the
            # property under test is the failure *type*, not that
            # every flip is detected (array bytes carry no checksum)
            assert isinstance(message, (dict, list, str, int, float))
