"""Family-specific pins: goldens, LRU equivalence, refinement laws.

The invariant matrix (``tests/test_invariants.py``) asserts what every
registered partitioner must satisfy; this suite pins what each *family*
of :mod:`repro.partitioning.families` specifically promises:

* golden fixtures — tiny hand-traced hypergraphs with exact expected
  assignments for the HYPE-style expansion and the min-max streamer
  (the traces are written out in comments, so a behaviour change shows
  up as a readable diff, not just a digest flip);
* capped-LRU equivalence — a presence-table cap that never fills is
  bit-identical to the unbounded table, and a tight cap degrades
  quality boundedly while keeping every invariant;
* :class:`~repro.partitioning.families.MinMaxState` unit laws — the
  live connectivity counter under place/remove/eviction/overlay;
* refinement laws — the FM polish never worsens the weighted cut, is
  identical for every worker count, and respects its balance cap;
* stream adapters — ``materialise_stream`` rebuilds the exact CSR.
"""

import numpy as np
import pytest

from repro.architecture.cost import uniform_cost_matrix
from repro.core.metrics import evaluate_partition
from repro.hypergraph.generators import random_uniform_hypergraph
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.model import Hypergraph
from repro.partitioning.families import (
    MinMaxState,
    MinMaxStreamer,
    NeighborhoodExpansion,
    PolishedStreamer,
    RefineConfig,
    build_partitioner,
    get_family,
    materialise_stream,
    refine_partition,
)
from repro.streaming import OnePassStreamer, stream_hmetis

P = 2


def _cut(hg, assignment, num_parts):
    return evaluate_partition(
        hg, assignment, num_parts, uniform_cost_matrix(num_parts)
    ).hyperedge_cut


def _instance(seed=5):
    return random_uniform_hypergraph(200, 260, 4.0, seed=seed, name="fam")


class TestGoldenFixtures:
    """Hand-traced expected assignments on tiny fixtures."""

    def test_minmax_golden_trace(self):
        # Nets: e0={0} e1={0} (ballast part0), e2..e4={1} (ballast
        # part1), e5={2,3} (the pair that must co-locate), e6={4},
        # e7={5}.  W=6, p=2, slack 1.1 -> cap 3.3 (max 3 per part).
        # Greedy min-max trace (score_i = X_i - conn_i - eps*load_i/3):
        #   v0: all-zero tie            -> part0   conn=[2,0]
        #   v1: -2 vs 0                 -> part1   conn=[2,3]
        #   v2: -2 vs -3                -> part0   conn=[3,3]
        #   v3: X0=1 breaks the conn tie -> part0  (e5 stays uncut)
        #   v4: conn tie, load tie-break -> part1
        #   v5: part0 is over the cap    -> part1
        hg = Hypergraph(
            6, [[0], [0], [1], [1], [1], [2, 3], [4], [5]], name="mm-golden"
        )
        expected = [0, 1, 0, 0, 1, 1]
        for chunk_size in (1, 2, 6):  # vertex mode: chunking-invariant
            r = MinMaxStreamer(chunk_size=chunk_size).partition(hg, 2)
            assert r.assignment.tolist() == expected, chunk_size
        r = MinMaxStreamer(chunk_size=2).partition(hg, 2)
        assert _cut(hg, r.assignment, 2) == 0  # e5 not cut
        assert r.metadata["imbalance"] == pytest.approx(1.0)
        # part1 holds nets e2,e3,e4,e6,e7; part0 holds e0,e1,e5
        assert r.metadata["max_connectivity"] == 5

    def test_hype_golden_trace(self):
        # Two triangles joined by one bridge net.  Cap 1.05*6/2 = 3.15
        # forces a 3/3 split; the expansion order seeds at the lowest
        # degree vertex (v0) and the external-neighbour score keeps each
        # triangle whole, so the only reachable outcome is {012|345}
        # with exactly the bridge cut.
        hg = Hypergraph(6, [[0, 1, 2], [3, 4, 5], [2, 3]], name="hype-golden")
        expected = [0, 0, 0, 1, 1, 1]
        for chunk_size in (1, 2, 6):
            r = NeighborhoodExpansion(chunk_size=chunk_size).partition(hg, 2)
            assert r.assignment.tolist() == expected, chunk_size
        r = NeighborhoodExpansion(chunk_size=2).partition(hg, 2)
        assert _cut(hg, r.assignment, 2) == 1  # only the bridge
        assert r.metadata["imbalance"] == pytest.approx(1.0)
        assert r.metadata["architecture_aware"] is False

    def test_hype_cap_spills_into_next_part(self):
        # One clique over all vertices: without the cap everything would
        # land on part0; the cap forces an exact 2/2 spill.
        hg = Hypergraph(4, [[0, 1, 2, 3]], name="hype-cap")
        r = NeighborhoodExpansion().partition(hg, 2)
        loads = np.bincount(r.assignment, minlength=2)
        assert sorted(loads.tolist()) == [2, 2]


class TestMinMaxStateLaws:
    """The live connectivity counter, under every mutation path."""

    def _state(self, max_tracked_edges=None):
        return MinMaxState(
            2, expected_loads=np.ones(2), max_tracked_edges=max_tracked_edges
        )

    def test_place_and_remove_track_presence_transitions(self):
        s = self._state()
        e = np.array([3, 7], dtype=np.int64)
        s.place(e, 0, 1.0)
        assert s.connectivity.tolist() == [2, 0]
        s.place(np.array([3], dtype=np.int64), 0, 1.0)  # 1 -> 2: no change
        assert s.connectivity.tolist() == [2, 0]
        s.place(np.array([3], dtype=np.int64), 1, 1.0)  # new part incidence
        assert s.connectivity.tolist() == [2, 1]
        s.remove(np.array([3], dtype=np.int64), 0, 1.0)  # 2 -> 1: no change
        assert s.connectivity.tolist() == [2, 1]
        s.remove(np.array([3], dtype=np.int64), 0, 1.0)  # 1 -> 0: retire
        assert s.connectivity.tolist() == [1, 1]
        assert s.loads.tolist() == [0.0, 1.0]

    def test_gather_returns_presence_not_pin_counts(self):
        s = self._state()
        e = np.array([5], dtype=np.int64)
        for _ in range(3):
            s.place(e, 0, 1.0)
        # summed pin counts would be 3; presence is 1
        assert s.gather(np.array([5, 9], dtype=np.int64)).tolist() == [1, 0]
        X = s.gather_block(
            np.array([5, 9, 5], dtype=np.int64),
            np.array([0, 2, 3], dtype=np.int64),
        )
        assert X.tolist() == [[1, 0], [1, 0]]

    def test_eviction_retires_connectivity(self):
        s = self._state(max_tracked_edges=1)
        s.place(np.array([0], dtype=np.int64), 0, 1.0)
        assert s.connectivity.tolist() == [1, 0]
        s.place(np.array([1], dtype=np.int64), 1, 1.0)  # evicts net 0
        assert s.evictions == 1
        # net 0's part0 incidence left the counter with its row
        assert s.connectivity.tolist() == [0, 1]
        assert s.gather(np.array([0], dtype=np.int64)).tolist() == [0, 0]

    def test_overlay_recounts(self):
        s = self._state()
        s.set_rows(
            np.array([2, 4], dtype=np.int64),
            np.array([[3, 0], [1, 2]], dtype=np.int64),
        )
        assert s.connectivity.tolist() == [2, 1]
        # seed_table accumulates into existing rows: row 2 -> [3, 1]
        s.seed_table(
            np.array([2], dtype=np.int64), np.array([[0, 1]], dtype=np.int64)
        )
        assert s.connectivity.tolist() == [2, 2]
        # set_rows overwrites: row 2 -> [0, 1]
        s.set_rows(
            np.array([2], dtype=np.int64), np.array([[0, 1]], dtype=np.int64)
        )
        assert s.connectivity.tolist() == [1, 2]


class TestCappedLRUEquivalence:
    """The presence-table cap: exact when idle, bounded when tight."""

    def test_roomy_cap_is_bit_identical_to_unbounded(self):
        hg = _instance()
        exact = MinMaxStreamer(chunk_size=32).partition(hg, 4)
        roomy = MinMaxStreamer(
            chunk_size=32, max_tracked_edges=hg.num_edges
        ).partition(hg, 4)
        assert np.array_equal(exact.assignment, roomy.assignment)
        assert roomy.metadata["evictions"] == 0
        assert roomy.metadata["peak_tracked_edges"] <= hg.num_edges

    def test_tight_cap_keeps_invariants_and_bounds_quality(self):
        hg = _instance()
        exact = MinMaxStreamer(chunk_size=32).partition(hg, 4)
        capped = MinMaxStreamer(
            chunk_size=32, max_tracked_edges=16
        ).partition(hg, 4)
        assert capped.metadata["evictions"] > 0  # the pressure is real
        assert capped.metadata["peak_tracked_edges"] <= 16
        assert (capped.assignment >= 0).all()
        loads = np.bincount(capped.assignment, minlength=4).astype(float)
        assert loads.max() / loads.mean() <= 1.15 + 1e-9
        # forgetting nets costs quality boundedly, not catastrophically
        cut_exact = _cut(hg, exact.assignment, 4)
        cut_capped = _cut(hg, capped.assignment, 4)
        assert cut_capped <= 2.0 * max(cut_exact, 1.0)

    def test_hype_capped_table_stays_valid(self):
        hg = _instance()
        capped = NeighborhoodExpansion(
            chunk_size=32, max_tracked_edges=16
        ).partition(hg, 4)
        assert capped.metadata["evictions"] > 0
        assert capped.metadata["peak_tracked_edges"] <= 16
        loads = np.bincount(capped.assignment, minlength=4).astype(float)
        assert loads.max() / loads.mean() <= 1.05 + 1e-9

    def test_similarity_buffer_reorders_deterministically(self):
        hg = _instance()
        make = lambda: MinMaxStreamer(chunk_size=32, buffer_size=64)
        a, b = make().partition(hg, 4), make().partition(hg, 4)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.metadata["similarity_ordered"] is True
        plain = MinMaxStreamer(chunk_size=32).partition(hg, 4)
        assert plain.metadata["similarity_ordered"] is False


class TestRefinementLaws:
    """The FM polish: monotone, balanced, worker-count invariant."""

    def test_polish_never_worsens_the_cut(self):
        hg = _instance()
        base = OnePassStreamer(chunk_size=32).partition(hg, 4)
        refined, stats = refine_partition(hg, base.assignment, 4)
        assert stats["refine_cut_after"] <= stats["refine_cut_before"]
        assert _cut(hg, refined, 4) <= _cut(hg, base.assignment, 4)
        assert stats["imbalance"] <= 1.1 + 1e-9
        assert not np.shares_memory(refined, base.assignment)

    def test_refine_workers_never_change_the_answer(self):
        hg = _instance(seed=6)
        base = OnePassStreamer(chunk_size=32).partition(hg, 4)
        outs = [
            refine_partition(
                hg, base.assignment, 4, refine=RefineConfig(workers=w)
            )
            for w in (1, 2, 4)
        ]
        for refined, stats in outs[1:]:
            assert np.array_equal(refined, outs[0][0])
            assert stats["refine_moves"] == outs[0][1]["refine_moves"]

    def test_min_gain_filters_moves(self):
        hg = _instance()
        base = OnePassStreamer(chunk_size=32).partition(hg, 4)
        _, loose = refine_partition(hg, base.assignment, 4)
        _, strict = refine_partition(
            hg, base.assignment, 4, refine=RefineConfig(min_gain=1e9)
        )
        assert strict["refine_moves"] == 0
        assert strict["refine_cut_after"] == strict["refine_cut_before"]
        assert loose["refine_moves"] >= strict["refine_moves"]

    def test_polished_streamer_wraps_any_family(self):
        hg = _instance()
        polished = PolishedStreamer(MinMaxStreamer(chunk_size=32))
        assert polished.name == "stream-minmax+fm"
        r = polished.partition(hg, 4)
        assert r.algorithm == "stream-minmax+fm"
        assert r.metadata["refined"] is True
        assert r.metadata["refine_cut_after"] <= r.metadata["refine_cut_before"]
        base = MinMaxStreamer(chunk_size=32).partition(hg, 4)
        assert _cut(hg, r.assignment, 4) <= _cut(hg, base.assignment, 4)

    def test_refine_config_validation(self):
        with pytest.raises(ValueError, match="passes"):
            RefineConfig(passes=0)
        with pytest.raises(ValueError, match="balance_slack"):
            RefineConfig(balance_slack=1.0)
        with pytest.raises(ValueError, match="workers"):
            RefineConfig(workers=0)
        with pytest.raises(ValueError, match="min_gain"):
            RefineConfig(min_gain=-0.5)


class TestStreamAdapters:
    """materialise_stream and the streamed entry points."""

    def test_materialise_stream_roundtrips_the_csr(self, tmp_path):
        hg = _instance()
        path = tmp_path / "fam.hgr"
        write_hmetis(hg, path, write_weights=True)
        with stream_hmetis(path, chunk_size=48) as stream:
            rebuilt = materialise_stream(stream)
        assert rebuilt.num_vertices == hg.num_vertices
        assert rebuilt.num_edges == hg.num_edges
        assert np.array_equal(rebuilt.edge_ptr, hg.edge_ptr)
        assert np.array_equal(rebuilt.edge_pins, hg.edge_pins)
        assert np.allclose(rebuilt.vertex_weights, hg.vertex_weights)
        assert np.allclose(rebuilt.edge_weights, hg.edge_weights)

    def test_streamed_equals_in_memory(self, tmp_path):
        hg = _instance()
        path = tmp_path / "fam.hgr"
        write_hmetis(hg, path, write_weights=True)
        for make in (
            lambda: MinMaxStreamer(chunk_size=48),
            lambda: NeighborhoodExpansion(chunk_size=48),
        ):
            direct = make().partition(hg, 4)
            with stream_hmetis(path, chunk_size=48) as stream:
                streamed = make().partition_stream(stream, 4)
            assert np.array_equal(direct.assignment, streamed.assignment)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="balance_slack"):
            NeighborhoodExpansion(balance_slack=0.9)
        with pytest.raises(ValueError, match="chunk_size"):
            MinMaxStreamer(chunk_size=0)
        with pytest.raises(ValueError, match="buffer_size"):
            MinMaxStreamer(buffer_size=0)
        with pytest.raises(ValueError, match="score_mode"):
            NeighborhoodExpansion(score_mode="banana")
        with pytest.raises(ValueError, match="workers"):
            MinMaxStreamer(workers=0)
        with pytest.raises(ValueError, match="tie_penalty"):
            MinMaxStreamer(tie_penalty=-1.0).partition(_instance(), 2)

    def test_registry_lookup_and_refine_wrapping(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            get_family("nope")
        spec = {
            "partitioner": "minmax",
            "kernel": "auto",
            "workers": 1,
            "max_tracked_edges": None,
            "buffer_size": None,
            "refine": True,
            "refine_passes": 2,
        }
        built = build_partitioner(spec, 100)
        assert isinstance(built, PolishedStreamer)
        assert built.name == "stream-minmax+fm"
