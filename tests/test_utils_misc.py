"""Tests for tables, heatmaps, timing and validation utilities."""

import numpy as np
import pytest

from repro.utils.heatmap import ascii_heatmap, downsample_matrix, log_scale
from repro.utils.tables import format_kv, format_number, format_table
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_array_shape,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_square_matrix,
)


class TestFormatNumber:
    def test_int(self):
        assert format_number(42) == "42"

    def test_float_precision(self):
        assert format_number(3.14159, precision=2) == "3.14"

    def test_strips_trailing_zeros(self):
        assert format_number(2.5) == "2.5"

    def test_large_scientific(self):
        assert "e" in format_number(1.5e9)

    def test_nan(self):
        assert format_number(float("nan")) == "nan"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_bool_passthrough(self):
        assert format_number(True) == "True"


class TestFormatTable:
    def test_contains_all_cells(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        for token in ("name", "value", "a", "bb", "1", "22"):
            assert token in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment_is_stable(self):
        out = format_table(["name", "col"], [["a", 1], ["b", 100]])
        lines = out.splitlines()
        assert len({len(l) for l in lines[-2:]}) == 1  # right-aligned numbers


class TestFormatKV:
    def test_renders_pairs(self):
        out = format_kv({"alpha": 1.7, "beta": 2})
        assert "alpha" in out and "1.7" in out and "beta" in out

    def test_empty(self):
        assert format_kv({}, title="t") == "t"


class TestDownsample:
    def test_small_passthrough(self):
        m = np.arange(9.0).reshape(3, 3)
        assert np.array_equal(downsample_matrix(m, max_size=4), m)

    def test_reduces_size(self):
        m = np.ones((100, 100))
        out = downsample_matrix(m, max_size=10)
        assert out.shape == (10, 10)
        assert np.allclose(out, 1.0)

    def test_preserves_mean_structure(self):
        m = np.zeros((64, 64))
        m[:32, :32] = 8.0
        out = downsample_matrix(m, max_size=8)
        assert out[0, 0] == pytest.approx(8.0)
        assert out[-1, -1] == pytest.approx(0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            downsample_matrix(np.ones((3, 4)))


class TestLogScale:
    def test_zeros_mapped_to_floor(self):
        m = np.array([[0.0, 10.0], [100.0, 1000.0]])
        out = log_scale(m)
        assert out[0, 0] == pytest.approx(1.0)  # floor = min positive = 10

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_scale(np.array([[-1.0]]))

    def test_all_zero(self):
        assert np.array_equal(log_scale(np.zeros((2, 2))), np.zeros((2, 2)))


class TestAsciiHeatmap:
    def test_shape_of_output(self):
        out = ascii_heatmap(np.random.default_rng(0).random((20, 20)) + 0.1, max_size=10, legend=False)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 10 for l in lines)

    def test_title_and_legend(self):
        out = ascii_heatmap(np.ones((4, 4)), title="T")
        assert out.startswith("T")
        assert "ramp" in out

    def test_constant_matrix_does_not_crash(self):
        ascii_heatmap(np.full((5, 5), 3.0))


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.measure("a"):
            pass
        with sw.measure("a"):
            pass
        assert sw.total("a") >= 0.0
        assert sw.total("missing") == 0.0
        assert "a" in sw.summary()


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1) == 1
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 10, inclusive=False)

    def test_check_array_shape(self):
        arr = np.zeros((3, 4))
        check_array_shape("a", arr, (3, 4))
        check_array_shape("a", arr, (3, -1))
        with pytest.raises(ValueError):
            check_array_shape("a", arr, (4, 3))
        with pytest.raises(ValueError):
            check_array_shape("a", arr, (3,))

    def test_check_square_matrix(self):
        check_square_matrix("m", np.eye(3))
        check_square_matrix("m", np.eye(3), 3)
        with pytest.raises(ValueError):
            check_square_matrix("m", np.ones((2, 3)))
        with pytest.raises(ValueError):
            check_square_matrix("m", np.eye(3), 4)
