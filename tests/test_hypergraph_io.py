"""Tests for hypergraph file formats (hMetis, PaToH, MatrixMarket, JSON)."""

import numpy as np
import pytest
import scipy.io
import scipy.sparse as sp

from repro.hypergraph.io import (
    HypergraphFormatError,
    load_json,
    read_hmetis,
    read_matrix_market,
    read_patoh,
    save_json,
    write_hmetis,
    write_patoh,
)
from repro.hypergraph.model import Hypergraph


@pytest.fixture
def weighted_hypergraph():
    return Hypergraph(
        4,
        [[0, 1], [1, 2, 3], [0, 3]],
        vertex_weights=[1, 2, 3, 4],
        edge_weights=[10, 20, 30],
        name="weighted",
    )


class TestHmetis:
    def test_roundtrip_unweighted(self, tiny_hypergraph, tmp_path):
        path = tmp_path / "h.hmetis"
        write_hmetis(tiny_hypergraph, path)
        back = read_hmetis(path)
        assert back.num_vertices == tiny_hypergraph.num_vertices
        assert back.to_edge_list() == tiny_hypergraph.to_edge_list()

    def test_roundtrip_weighted(self, weighted_hypergraph, tmp_path):
        path = tmp_path / "w.hmetis"
        write_hmetis(weighted_hypergraph, path, write_weights=True)
        back = read_hmetis(path)
        assert np.array_equal(back.edge_weights, weighted_hypergraph.edge_weights)
        assert np.array_equal(back.vertex_weights, weighted_hypergraph.vertex_weights)

    def test_reads_reference_format(self, tmp_path):
        # The canonical hMetis example: 4 hyperedges over 7 vertices.
        text = "4 7\n1 2\n1 7 5 6\n5 6 4\n2 3 4\n"
        path = tmp_path / "ref.hgr"
        path.write_text(text)
        hg = read_hmetis(path)
        assert hg.num_edges == 4
        assert hg.num_vertices == 7
        assert hg.edge(1).tolist() == [0, 4, 5, 6]  # 1-based -> 0-based

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.hgr"
        path.write_text("% comment\n1 3\n% another\n1 2 3\n")
        hg = read_hmetis(path)
        assert hg.num_edges == 1

    def test_edge_weight_format(self, tmp_path):
        path = tmp_path / "ew.hgr"
        path.write_text("2 3 1\n9 1 2\n4 2 3\n")
        hg = read_hmetis(path)
        assert hg.edge_weights.tolist() == [9.0, 4.0]

    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "empty"),
            ("1\n1 2\n", "header"),
            ("2 3\n1 2\n", "expected 2 hyperedge"),
            ("1 3\n1 9\n", "pin outside"),
            ("1 3 7\n1 2\n", "unknown fmt"),
            ("1 3\nx y\n", "non-integer"),
        ],
    )
    def test_malformed_raises(self, tmp_path, text, match):
        path = tmp_path / "bad.hgr"
        path.write_text(text)
        with pytest.raises(HypergraphFormatError, match=match):
            read_hmetis(path)


class TestPatoh:
    def test_roundtrip(self, tiny_hypergraph, tmp_path):
        path = tmp_path / "h.patoh"
        write_patoh(tiny_hypergraph, path)
        back = read_patoh(path)
        assert back.to_edge_list() == tiny_hypergraph.to_edge_list()

    def test_one_based(self, tmp_path):
        path = tmp_path / "p1.patoh"
        path.write_text("1 3 2 4\n1 2\n2 3\n")
        hg = read_patoh(path)
        assert hg.edge(0).tolist() == [0, 1]
        assert hg.edge(1).tolist() == [1, 2]

    def test_pin_count_checked(self, tmp_path):
        path = tmp_path / "bad.patoh"
        path.write_text("0 3 2 5\n0 1\n1 2\n")
        with pytest.raises(HypergraphFormatError, match="pins"):
            read_patoh(path)

    def test_bad_base(self, tmp_path):
        path = tmp_path / "b.patoh"
        path.write_text("2 3 1 2\n0 1\n")
        with pytest.raises(HypergraphFormatError, match="base"):
            read_patoh(path)


class TestMatrixMarket:
    def test_row_net_from_mtx(self, tmp_path):
        m = sp.csr_array(np.array([[1.0, 0, 2.0], [0, 3.0, 0]]))
        path = tmp_path / "m.mtx"
        scipy.io.mmwrite(str(path), m)
        hg = read_matrix_market(path)
        assert hg.num_vertices == 3
        assert hg.num_edges == 2
        assert hg.edge(0).tolist() == [0, 2]

    def test_column_net(self, tmp_path):
        m = sp.csr_array(np.array([[1.0, 1.0], [0.0, 1.0]]))
        path = tmp_path / "m.mtx"
        scipy.io.mmwrite(str(path), m)
        hg = read_matrix_market(path, model="column-net")
        assert hg.num_vertices == 2
        assert hg.num_edges == 2


class TestJson:
    def test_lossless_roundtrip(self, weighted_hypergraph, tmp_path):
        path = tmp_path / "h.json"
        save_json(weighted_hypergraph, path)
        back = load_json(path)
        assert back == weighted_hypergraph
        assert back.name == "weighted"
