"""Tests for the persistent binary chunk store (repro.streaming.chunkstore).

The load-bearing property, golden-hash style as in tests/test_engine.py:
replaying a store must be *invisible* to every streaming partitioner —
store-fed assignments equal text-fed assignments digest-for-digest for
the one-pass streamer, the buffered restreamer and both sharded
variants.  Around that: structural round-trips (weights and pin-budgeted
chunk boundaries included), manifest-version and truncated-file
rejection, digest validation and the convert-once cache contract.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core import HyperPRAWConfig
from repro.engine import ChunkStoreSource, block_of
from repro.hypergraph.io import read_hmetis, write_hmetis
from repro.hypergraph.suite import load_instance
from repro.streaming import (
    CHUNKSTORE_VERSION,
    BufferedRestreamer,
    ChunkStoreError,
    HypergraphChunkStream,
    OnePassStreamer,
    ShardedStreamer,
    assemble,
    cached_stream,
    open_store,
    source_digest,
    stream_hmetis,
)
from repro.streaming.chunkstore import DATA_NAME, MANIFEST_NAME, store_dir_for


def _digest(assignment: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(assignment, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


@pytest.fixture(scope="module")
def instance():
    return load_instance("sparsine", scale=0.2)


@pytest.fixture(scope="module")
def corpus(instance, tmp_path_factory):
    """``(hgr_path, store_path)`` for the module's shared instance."""
    tmp = tmp_path_factory.mktemp("store")
    path = tmp / "inst.hgr"
    write_hmetis(instance, path, write_weights=True)
    with stream_hmetis(path, chunk_size=64) as stream:
        store = stream.save(tmp / "inst.chunkstore")
    return path, store


class TestRoundTrip:
    def test_store_assembles_identically(self, corpus):
        path, store = corpus
        ref = read_hmetis(path)
        back = assemble(open_store(store))
        assert back == ref
        assert np.array_equal(back.vertex_weights, ref.vertex_weights)
        assert np.array_equal(back.edge_weights, ref.edge_weights)

    def test_manifest_metadata(self, corpus):
        path, store = corpus
        stream = open_store(store)
        assert stream.source_digest == source_digest(path)
        assert stream.chunk_size == 64
        assert stream.pin_budget is None
        assert stream.num_chunks == len(stream.manifest["chunks"])

    def test_pin_budgeted_boundaries_roundtrip(self, instance, tmp_path):
        path = tmp_path / "pb.hgr"
        write_hmetis(instance, path, write_weights=True)
        with stream_hmetis(path, chunk_size=64, pin_budget=100) as stream:
            bounds = [stream.chunk_bounds(c) for c in range(stream.num_chunks)]
            store = stream.save(tmp_path / "pb.chunkstore")
        replay = open_store(store)
        assert replay.pin_budget == 100
        assert [
            replay.chunk_bounds(c) for c in range(replay.num_chunks)
        ] == bounds
        assert assemble(replay) == read_hmetis(path)

    def test_save_in_memory_adapter(self, instance, tmp_path):
        store = HypergraphChunkStream(instance, 128).save(tmp_path / "mem")
        replay = open_store(store)
        assert replay.source_digest is None
        assert assemble(replay) == instance
        # an unknown-source store can never satisfy a digest check
        with pytest.raises(ChunkStoreError, match="digest"):
            open_store(store, expected_digest="sha256:deadbeef")

    def test_iter_range_matches_full(self, corpus):
        _, store = corpus
        stream = open_store(store)
        full = [c.vertex_edges.tolist() for c in stream]
        lo, hi = 1, stream.num_chunks - 1
        part = [c.vertex_edges.tolist() for c in stream.iter_range(lo, hi)]
        assert part == full[lo:hi]

    def test_reiterable_and_closeable(self, corpus):
        _, store = corpus
        stream = open_store(store)
        first = [c.vertex_edges.tolist() for c in stream]
        stream.close()  # drops the map; the next iteration reopens it
        second = [c.vertex_edges.tolist() for c in stream]
        assert first == second

    def test_chunk_store_source_blocks(self, corpus):
        _, store = corpus
        stream = open_store(store)
        want = [block_of(c).vertex_edges.tolist() for c in stream]
        got = [b.vertex_edges.tolist() for b in ChunkStoreSource(store).blocks()]
        assert got == want
        ranged = list(ChunkStoreSource(store, chunk_range=(1, 3)).blocks())
        assert [b.vertex_edges.tolist() for b in ranged] == want[1:3]


class TestPartitionerEquality:
    """Store replay is byte-identical to the text path (golden-hash style)."""

    def _both(self, corpus, make_partitioner, num_parts, seed=None):
        path, store = corpus
        with stream_hmetis(path, chunk_size=64) as text:
            from_text = make_partitioner().partition_stream(
                text, num_parts, seed=seed
            )
        from_store = make_partitioner().partition_stream(
            open_store(store), num_parts, seed=seed
        )
        return from_text, from_store

    def test_onepass(self, corpus):
        a, b = self._both(corpus, OnePassStreamer, 8)
        assert _digest(a.assignment) == _digest(b.assignment)

    def test_buffered(self, corpus):
        make = lambda: BufferedRestreamer(
            HyperPRAWConfig(record_history=False), buffer_size=50
        )
        a, b = self._both(corpus, make, 4)
        assert _digest(a.assignment) == _digest(b.assignment)

    def test_sharded_onepass(self, corpus):
        make = lambda: ShardedStreamer(OnePassStreamer(), workers=2)
        a, b = self._both(corpus, make, 4, seed=11)
        assert _digest(a.assignment) == _digest(b.assignment)

    def test_sharded_buffered(self, corpus):
        make = lambda: ShardedStreamer(
            BufferedRestreamer(
                HyperPRAWConfig(record_history=False), buffer_size=50
            ),
            workers=2,
        )
        a, b = self._both(corpus, make, 4, seed=11)
        assert _digest(a.assignment) == _digest(b.assignment)


class TestRejection:
    """Corrupt, stale or incompatible stores fail loudly, never misread."""

    def _copy_store(self, store, tmp_path):
        import shutil

        dst = tmp_path / "copy.chunkstore"
        shutil.copytree(store, dst)
        return dst

    def test_missing_store(self, tmp_path):
        with pytest.raises(ChunkStoreError, match="no chunk store"):
            open_store(tmp_path / "nowhere")

    def test_unknown_version_rejected(self, corpus, tmp_path):
        _, store = corpus
        dst = self._copy_store(store, tmp_path)
        manifest = json.loads((dst / MANIFEST_NAME).read_text())
        manifest["version"] = CHUNKSTORE_VERSION + 1
        (dst / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ChunkStoreError, match="version"):
            open_store(dst)

    def test_foreign_json_rejected(self, corpus, tmp_path):
        _, store = corpus
        dst = self._copy_store(store, tmp_path)
        (dst / MANIFEST_NAME).write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ChunkStoreError, match="manifest"):
            open_store(dst)

    def test_truncated_data_rejected(self, corpus, tmp_path):
        _, store = corpus
        dst = self._copy_store(store, tmp_path)
        data = dst / DATA_NAME
        raw = data.read_bytes()
        data.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ChunkStoreError, match="truncated|corrupt"):
            open_store(dst)

    def test_section_past_end_rejected(self, corpus, tmp_path):
        _, store = corpus
        dst = self._copy_store(store, tmp_path)
        manifest = json.loads((dst / MANIFEST_NAME).read_text())
        manifest["chunks"][0]["edge_ids"]["offset"] = manifest["data_bytes"]
        (dst / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ChunkStoreError, match="exceeds"):
            open_store(dst)

    def test_digest_mismatch_rejected(self, corpus):
        _, store = corpus
        with pytest.raises(ChunkStoreError, match="digest mismatch"):
            open_store(store, expected_digest="sha256:deadbeef")

    def test_missing_manifest_keys_rejected(self, corpus, tmp_path):
        _, store = corpus
        dst = self._copy_store(store, tmp_path)
        manifest = json.loads((dst / MANIFEST_NAME).read_text())
        del manifest["data_bytes"]
        (dst / MANIFEST_NAME).write_text(json.dumps(manifest))
        # same error family as truncation, so cached_stream can fall
        # back to reconverting instead of crashing with KeyError
        with pytest.raises(ChunkStoreError, match="malformed manifest"):
            open_store(dst)

    def test_resaved_store_keeps_digest(self, corpus, tmp_path):
        path, store = corpus
        resaved = open_store(store).save(tmp_path / "resaved.chunkstore")
        assert open_store(resaved).source_digest == source_digest(path)


class TestCachedStream:
    """Convert once, replay after — the CLI --cache contract."""

    def test_miss_then_hit(self, instance, tmp_path):
        path = tmp_path / "c.hgr"
        write_hmetis(instance, path, write_weights=True)
        cache = tmp_path / "cache"
        first, hit1 = cached_stream(
            path, cache, opener=stream_hmetis, chunk_size=64
        )
        second, hit2 = cached_stream(
            path, cache, opener=stream_hmetis, chunk_size=64
        )
        assert (hit1, hit2) == (False, True)
        assert assemble(second) == read_hmetis(path)

    def test_source_change_invalidates(self, instance, tmp_path):
        path = tmp_path / "c.hgr"
        write_hmetis(instance, path, write_weights=True)
        cache = tmp_path / "cache"
        cached_stream(path, cache, opener=stream_hmetis, chunk_size=64)
        path.write_text(path.read_text() + "% trailing comment\n")
        stream, hit = cached_stream(
            path, cache, opener=stream_hmetis, chunk_size=64
        )
        assert not hit
        assert stream.source_digest == source_digest(path)

    def test_chunking_change_invalidates(self, instance, tmp_path):
        path = tmp_path / "c.hgr"
        write_hmetis(instance, path, write_weights=True)
        cache = tmp_path / "cache"
        cached_stream(path, cache, opener=stream_hmetis, chunk_size=64)
        stream, hit = cached_stream(
            path, cache, opener=stream_hmetis, chunk_size=32
        )
        assert not hit
        assert stream.chunk_size == 32

    def test_corrupt_store_is_reconverted(self, instance, tmp_path):
        path = tmp_path / "c.hgr"
        write_hmetis(instance, path, write_weights=True)
        cache = tmp_path / "cache"
        cached_stream(path, cache, opener=stream_hmetis, chunk_size=64)
        manifest = store_dir_for(path, cache) / MANIFEST_NAME
        broken = json.loads(manifest.read_text())
        del broken["chunks"]
        manifest.write_text(json.dumps(broken))
        stream, hit = cached_stream(
            path, cache, opener=stream_hmetis, chunk_size=64
        )
        assert not hit
        assert assemble(stream) == read_hmetis(path)

    def test_tilde_cache_dir_expands(self, instance, tmp_path, monkeypatch):
        # a README-style "~/cache" must land under $HOME, not create a
        # literal "~" directory in the CWD
        monkeypatch.setenv("HOME", str(tmp_path))
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "c.hgr"
        write_hmetis(instance, path, write_weights=True)
        cached_stream(path, "~/cache", opener=stream_hmetis, chunk_size=64)
        assert store_dir_for(path, tmp_path / "cache").is_dir()
        assert not (tmp_path / "~").exists()

    def test_same_basename_different_dirs_coexist(self, instance, tmp_path):
        # two sources sharing a filename must get distinct cache slots —
        # one slot would digest-mismatch and reconvert on every switch
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        write_hmetis(instance, a / "g.hgr", write_weights=True)
        write_hmetis(instance, b / "g.hgr")  # different bytes, same name
        cache = tmp_path / "cache"
        assert store_dir_for(a / "g.hgr", cache) != store_dir_for(
            b / "g.hgr", cache
        )
        for src in (a / "g.hgr", b / "g.hgr"):
            _, hit = cached_stream(src, cache, opener=stream_hmetis)
            assert not hit
        for src in (a / "g.hgr", b / "g.hgr"):
            _, hit = cached_stream(src, cache, opener=stream_hmetis)
            assert hit

    def test_hit_path_skips_rehashing(self, instance, tmp_path, monkeypatch):
        # an unchanged (size, mtime) fingerprint must short-circuit the
        # full-file sha256 — the whole point of replaying a huge source
        import repro.streaming.chunkstore as chunkstore

        path = tmp_path / "c.hgr"
        write_hmetis(instance, path, write_weights=True)
        cache = tmp_path / "cache"
        cached_stream(path, cache, opener=stream_hmetis, chunk_size=64)

        def boom(_):
            raise AssertionError("source was re-hashed on a fresh hit")

        monkeypatch.setattr(chunkstore, "source_digest", boom)
        stream, hit = cached_stream(
            path, cache, opener=stream_hmetis, chunk_size=64
        )
        assert hit
        assert assemble(stream) == read_hmetis(path)
