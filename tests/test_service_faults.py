"""Fault injection for the hardened service layer.

Every scenario the ops layer promises to survive, driven for real and
bounded by the ``wait_for`` deadline (no test may rely on unbounded
polling):

* a pool worker SIGKILLed mid-job marks the job ``failed`` with the
  stable ``worker_crashed`` code — the poller never hangs;
* a full job queue answers ``429 queue_full`` with a ``Retry-After``
  header;
* LRU eviction cannot reclaim a store pinned by an in-flight replay
  (the race is made deterministic with an explicit pin and with a
  queued job holding the request-path pin);
* missing / unknown / throttled API keys answer 401 / 403 / 429 with
  envelopes matching the codes ``openapi.py`` documents.
"""

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.parallel import fork_available
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.model import Hypergraph
from repro.service import (
    PartitionService,
    ServiceConfig,
    ServiceHandlers,
    openapi_spec,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process pool needs the fork start method"
)


def _request(url, data=None, method=None, headers=None):
    req = urllib.request.Request(
        url,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers=headers or {},
    )
    try:
        with urllib.request.urlopen(req) as resp:
            body = resp.read()
            status = resp.status
            resp_headers = dict(resp.headers)
    except urllib.error.HTTPError as err:
        body = err.read()
        status = err.code
        resp_headers = dict(err.headers)
    try:
        return status, json.loads(body), resp_headers
    except json.JSONDecodeError:
        return status, body.decode(), resp_headers


@pytest.fixture
def tiny_hgr(tiny_hypergraph, tmp_path):
    path = tmp_path / "tiny.hgr"
    write_hmetis(tiny_hypergraph, path)
    return path.read_bytes()


@pytest.fixture
def other_hgr(tmp_path):
    """A second, differently-shaped hypergraph (distinct digest)."""
    hg = Hypergraph(8, [[0, 1, 2, 3], [4, 5], [5, 6, 7], [0, 7]], name="other")
    path = tmp_path / "other.hgr"
    write_hmetis(hg, path)
    return path.read_bytes()


# ----------------------------------------------------------------------
# worker death
# ----------------------------------------------------------------------
@needs_fork
class TestWorkerCrash:
    def test_sigkilled_worker_fails_job_not_hangs(
        self, tmp_path, tiny_hgr, wait_for
    ):
        """SIGKILL the forked worker mid-job: the job must reach
        ``failed`` with the stable ``worker_crashed`` code within the
        deadline, and the crash must be visible in healthz."""
        cfg = ServiceConfig(
            port=0, workers=1, pool="process", cache_dir=tmp_path / "c"
        )
        with PartitionService(cfg) as svc:
            jobs = svc.api.jobs

            def stall():
                time.sleep(120)  # far beyond any test deadline
                return [0], 1, {}

            job = jobs.create({"k": 1})
            jobs.submit(job, stall, on_complete=svc.api._job_complete)
            pid = wait_for(
                lambda: jobs.active_pid(job.id),
                timeout=30,
                message="worker child to start",
            )
            os.kill(pid, signal.SIGKILL)

            def _failed():
                status, doc, _ = _request(
                    f"{svc.url}/v1/partitions/{job.id}"
                )
                assert status == 200
                return doc if doc["status"] in ("done", "failed") else None

            doc = wait_for(_failed, timeout=30, message="job to fail")
            assert doc["status"] == "failed"
            assert doc["error"]["code"] == "worker_crashed"
            assert "signal 9" in doc["error"]["message"]
            _, health, _ = _request(f"{svc.url}/v1/healthz")
            assert health["stats"]["jobs_crashed"] == 1
            # The service survives: the next job runs normally.
            status, job2, _ = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1", data=tiny_hgr
            )
            assert status == 200 and job2["status"] == "done"


# ----------------------------------------------------------------------
# queue overflow
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_full_queue_429_with_retry_after(self, tmp_path, tiny_hgr):
        """``max_queue_depth=0`` refuses every async job: 429 with the
        documented ``queue_full`` code and a Retry-After header."""
        cfg = ServiceConfig(
            port=0,
            workers=1,
            pool="thread",
            max_queue_depth=0,
            cache_dir=tmp_path / "c",
        )
        with PartitionService(cfg) as svc:
            status, body, headers = _request(
                f"{svc.url}/v1/partitions?k=2", data=tiny_hgr
            )
            assert status == 429
            assert body["error"]["code"] == "queue_full"
            assert int(headers["Retry-After"]) >= 1
            # sync=1 bypasses the queue and still succeeds.
            status, job, _ = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1", data=tiny_hgr
            )
            assert status == 200 and job["status"] == "done"
            _, health, _ = _request(f"{svc.url}/v1/healthz")
            assert health["stats"]["rejected_requests"] == 1

    def test_429_documented_for_the_route(self):
        spec = openapi_spec()
        responses = spec["paths"]["/v1/partitions"]["post"]["responses"]
        assert "429" in responses
        assert "queue_full" in responses["429"]["description"]


# ----------------------------------------------------------------------
# eviction vs in-flight replay
# ----------------------------------------------------------------------
class TestEvictionRace:
    def test_pinned_store_survives_budget_pressure(self, tmp_path):
        """The mechanism itself: a pinned digest is never evicted, the
        unpin applies the deferred eviction."""
        api = ServiceHandlers(
            ServiceConfig(
                cache_dir=tmp_path / "c", workers=1, store_budget_bytes=1
            )
        )
        try:
            hg_a = Hypergraph(6, [[0, 1, 2], [3, 4, 5]], name="a")
            hg_b = Hypergraph(6, [[0, 1], [2, 3], [4, 5]], name="b")
            paths = {}
            for name, hg in (("a", hg_a), ("b", hg_b)):
                p = tmp_path / f"{name}.hgr"
                write_hmetis(hg, p)
                paths[name] = p
            info_a = api.ingest_upload({}, [paths["a"].read_bytes()])
            digest_a = info_a["digest"]
            api.store_cache.pin(digest_a)  # the in-flight replay's pin
            api.ingest_upload({}, [paths["b"].read_bytes()])
            # Budget is 1 byte, but A is pinned and B is freshest: both
            # must still be on disk.
            assert api.store_dir(digest_a).is_dir()
            assert not api.store_cache.was_evicted(digest_a)
            api.store_cache.unpin(digest_a)
            # Pin released -> the deferred eviction lands.
            assert not api.store_dir(digest_a).exists()
            assert api.store_cache.was_evicted(digest_a)
        finally:
            api.close()

    def test_inflight_replay_wins_over_eviction(
        self, tmp_path, tiny_hgr, other_hgr, wait_for
    ):
        """End to end: queue a replay of store A, bust the budget with
        upload B while A's job is in flight — the job must finish
        ``done`` (its pin blocked the evictor), and only then is A
        evictable."""
        cfg = ServiceConfig(
            port=0,
            workers=1,
            pool="thread",
            store_budget_bytes=1,  # any second store exceeds the budget
            cache_dir=tmp_path / "c",
        )
        with PartitionService(cfg) as svc:
            status, store_a, _ = _request(
                f"{svc.url}/v1/stores", data=tiny_hgr
            )
            assert status == 201
            digest_a = store_a["digest"]
            # Hold the single worker so A's job is genuinely in flight
            # (queued, pin taken) while B's upload lands.
            release = time.time() + 1.0

            def hold_worker():
                time.sleep(max(0.0, release - time.time()))
                return [0], 1, {}

            blocker = svc.api.jobs.create({"blocker": True})
            svc.api.jobs.submit(blocker, hold_worker)
            status, job, _ = _request(
                f"{svc.url}/v1/partitions?k=2&store={digest_a}",
                method="POST",
            )
            assert status == 202  # A is now pinned by the queued job
            status, _store_b, _ = _request(
                f"{svc.url}/v1/stores", data=other_hgr
            )
            assert status == 201  # B lands while A's job is pinned
            # The evictor ran at B's publish; pinned A must have survived.
            assert svc.api.store_dir(digest_a).is_dir()

            def _terminal():
                s, doc, _ = _request(svc.url + job["links"]["self"])
                assert s == 200
                return doc if doc["status"] in ("done", "failed") else None

            doc = wait_for(_terminal, timeout=60, message="replay to finish")
            assert doc["status"] == "done", doc["error"]

            # The job's unpin releases the deferred eviction: A goes.
            def _evicted():
                _, health, _ = _request(f"{svc.url}/v1/healthz")
                return health["stats"]["evictions"] >= 1 or None

            wait_for(_evicted, timeout=30, message="store eviction")
            status, body, _ = _request(
                f"{svc.url}/v1/partitions?k=2&store={digest_a}&sync=1",
                method="POST",
            )
            assert (status, body["error"]["code"]) == (409, "store_evicted")

    def test_evicted_store_restored_by_reupload(self, tmp_path, tiny_hgr, other_hgr):
        cfg = ServiceConfig(
            port=0,
            workers=1,
            store_budget_bytes=1,
            cache_dir=tmp_path / "c",
        )
        with PartitionService(cfg) as svc:
            _, store_a, _ = _request(f"{svc.url}/v1/stores", data=tiny_hgr)
            _, _store_b, _ = _request(f"{svc.url}/v1/stores", data=other_hgr)
            status, body, _ = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1&store={store_a['digest']}",
                method="POST",
            )
            assert (status, body["error"]["code"]) == (409, "store_evicted")
            # Re-upload the same bytes: same digest, store restored.
            status, again, _ = _request(f"{svc.url}/v1/stores", data=tiny_hgr)
            assert status == 201 and again["digest"] == store_a["digest"]
            status, job, _ = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1&store={store_a['digest']}",
                method="POST",
            )
            assert status == 200 and job["status"] == "done"


# ----------------------------------------------------------------------
# credentials
# ----------------------------------------------------------------------
class TestAuth:
    @pytest.fixture
    def authed(self, tmp_path):
        cfg = ServiceConfig(
            port=0,
            workers=1,
            cache_dir=tmp_path / "c",
            api_keys=("k-good",),
            rate_limit=1000.0,
            rate_burst=2,
        )
        with PartitionService(cfg) as svc:
            yield svc

    def test_missing_key_401(self, authed, tiny_hgr):
        status, body, _ = _request(
            f"{authed.url}/v1/partitions?k=2&sync=1", data=tiny_hgr
        )
        assert (status, body["error"]["code"]) == (401, "unauthorized")

    def test_unknown_key_403(self, authed, tiny_hgr):
        status, body, _ = _request(
            f"{authed.url}/v1/partitions?k=2&sync=1",
            data=tiny_hgr,
            headers={"X-API-Key": "k-wrong"},
        )
        assert (status, body["error"]["code"]) == (403, "forbidden")

    def test_good_key_admitted_both_header_forms(self, authed, tiny_hgr):
        for headers in (
            {"X-API-Key": "k-good"},
            {"Authorization": "Bearer k-good"},
        ):
            status, job, _ = _request(
                f"{authed.url}/v1/partitions?k=2&sync=1",
                data=tiny_hgr,
                headers=headers,
            )
            assert status == 200 and job["status"] == "done"

    def test_throttled_key_429_with_retry_after(self, authed, tiny_hgr):
        svc = PartitionService(
            ServiceConfig(
                port=0,
                workers=1,
                api_keys=("k-good",),
                rate_limit=0.5,
                rate_burst=1,
            )
        )
        with svc:
            first = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1",
                data=tiny_hgr,
                headers={"X-API-Key": "k-good"},
            )
            assert first[0] == 200
            status, body, headers = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1",
                data=tiny_hgr,
                headers={"X-API-Key": "k-good"},
            )
            assert (status, body["error"]["code"]) == (429, "rate_limited")
            assert int(headers["Retry-After"]) >= 1

    def test_public_routes_skip_auth(self, authed):
        for path in ("/v1/healthz", "/v1/metrics", "/v1/openapi.json"):
            status, _body, _ = _request(authed.url + path)
            assert status == 200, path

    def test_envelopes_match_spec(self, authed, tiny_hgr):
        """The live 401/403/429 statuses are documented for the route,
        and every envelope is the spec's Error shape."""
        responses = openapi_spec()["paths"]["/v1/partitions"]["post"][
            "responses"
        ]
        cases = [
            (None, 401),
            ({"X-API-Key": "k-wrong"}, 403),
        ]
        for headers, expected in cases:
            status, body, _ = _request(
                f"{authed.url}/v1/partitions?k=2&sync=1",
                data=tiny_hgr,
                headers=headers,
            )
            assert status == expected
            assert str(status) in responses
            assert set(body) == {"error"}
            assert set(body["error"]) == {"code", "message"}

    def test_rejections_counted(self, authed, tiny_hgr):
        _request(f"{authed.url}/v1/partitions?k=2&sync=1", data=tiny_hgr)
        _, health, _ = _request(f"{authed.url}/v1/healthz")
        assert health["auth"] is True
        assert health["stats"]["rejected_requests"] == 1
