"""Tests for repro.utils.rng — deterministic seed plumbing."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    derive_seed,
    seed_sequence,
    shuffled,
    spawn_generators,
    stable_permutation,
)


class TestAsGenerator:
    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSeedSequence:
    def test_int(self):
        assert seed_sequence(3).entropy == 3

    def test_rejects_generator(self):
        with pytest.raises(TypeError):
            seed_sequence(np.random.default_rng(0))


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_independent_streams(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_stable_across_calls(self):
        a1 = spawn_generators(9, 3)[1].random(4)
        a2 = spawn_generators(9, 3)[1].random(4)
        assert np.array_equal(a1, a2)

    def test_zero(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "x", 1) == derive_seed(7, "x", 1)

    def test_token_sensitivity(self):
        assert derive_seed(7, "x", 1) != derive_seed(7, "x", 2)
        assert derive_seed(7, "x") != derive_seed(7, "y")

    def test_base_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_none_base(self):
        assert derive_seed(None, "x") == derive_seed(None, "x")

    def test_positive_63bit(self):
        s = derive_seed(123, "anything", 456)
        assert 0 <= s < 2**63

    def test_rejects_bad_token(self):
        with pytest.raises(TypeError):
            derive_seed(1, 3.14)


class TestShuffledAndPermutation:
    def test_shuffled_preserves_elements(self):
        items = list(range(20))
        out = shuffled(items, seed=1)
        assert sorted(out) == items
        assert out != items  # overwhelmingly likely with 20 elements

    def test_shuffled_leaves_input(self):
        items = [3, 1, 2]
        shuffled(items, seed=0)
        assert items == [3, 1, 2]

    def test_permutation_is_permutation(self):
        p = stable_permutation(50, seed=3)
        assert sorted(p.tolist()) == list(range(50))

    def test_permutation_negative_raises(self):
        with pytest.raises(ValueError):
            stable_permutation(-1)
