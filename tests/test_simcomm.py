"""Tests for the simulated message-passing substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simcomm.collectives import allreduce_time, barrier_time, tree_rounds
from repro.simcomm.message import Flow
from repro.simcomm.network import LinkModel
from repro.simcomm.simulator import ClusterSimulator
from repro.simcomm.trace import TrafficTrace


class TestFlow:
    def test_valid(self):
        f = Flow(0, 1, 1000.0, 5)
        assert f.total_bytes == 1000.0

    def test_self_flow_rejected(self):
        with pytest.raises(ValueError):
            Flow(2, 2, 10.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Flow(-1, 0, 10.0)
        with pytest.raises(ValueError):
            Flow(0, 1, -1.0)
        with pytest.raises(ValueError):
            Flow(0, 1, 1.0, 0)

    def test_merge(self):
        merged = Flow(0, 1, 10.0, 1).merged_with(Flow(0, 1, 20.0, 2))
        assert merged.total_bytes == 30.0
        assert merged.num_messages == 3

    def test_merge_mismatch(self):
        with pytest.raises(ValueError):
            Flow(0, 1, 10.0).merged_with(Flow(0, 2, 10.0))


class TestLinkModel:
    def test_transfer_time(self, tiny_machine):
        # 1 MB over the 1000 MB/s fast link: 1 ms + 1 us latency.
        t = tiny_machine.transfer_time(0, 1, 1e6)
        assert t == pytest.approx(1e-3 + 1e-6)
        # slow link is 10x slower
        assert tiny_machine.transfer_time(0, 2, 1e6) == pytest.approx(1e-2 + 1e-6)

    def test_self_transfer_free(self, tiny_machine):
        assert tiny_machine.transfer_time(1, 1, 1e9) == 0.0

    def test_message_count_scales_latency(self, tiny_machine):
        t1 = tiny_machine.transfer_time(0, 1, 1e6, num_messages=1)
        t10 = tiny_machine.transfer_time(0, 1, 1e6, num_messages=10)
        assert t10 - t1 == pytest.approx(9e-6)

    def test_vectorised_matches_scalar(self, tiny_machine):
        src = np.array([0, 0, 2])
        dst = np.array([1, 2, 3])
        nbytes = np.array([1e6, 2e6, 3e6])
        msgs = np.array([1, 2, 3])
        vec = tiny_machine.flow_times(src, dst, nbytes, msgs)
        for k in range(3):
            assert vec[k] == pytest.approx(
                tiny_machine.transfer_time(src[k], dst[k], nbytes[k], num_messages=msgs[k])
            )

    def test_effective_bandwidth_below_nominal(self, tiny_machine):
        eff = tiny_machine.effective_bandwidth_mbs(0, 1, 1e6)
        assert eff < 1000.0
        assert eff == pytest.approx(1000.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(np.array([[1.0, 0.0], [1.0, 1.0]]))  # zero off-diag bw
        with pytest.raises(ValueError):
            LinkModel(np.ones((2, 2)), -np.ones((2, 2)))


class TestSimulatorModels:
    def _flows(self):
        return [Flow(0, 1, 1e6, 10), Flow(0, 2, 1e6, 10), Flow(2, 3, 5e5, 5)]

    def test_all_models_run(self, tiny_machine):
        sim = ClusterSimulator(tiny_machine)
        for model in ("overlap", "endpoint", "blocking"):
            res = sim.run_exchange(self._flows(), model=model)
            assert res.makespan_s > 0
            assert res.model == model

    def test_unknown_model(self, tiny_machine):
        with pytest.raises(ValueError, match="unknown model"):
            ClusterSimulator(tiny_machine).run_exchange(self._flows(), model="magic")

    def test_blocking_not_above_endpoint(self, tiny_machine):
        """Per-rank serialisation (blocking) ignores receiver contention;
        the endpoint model adds it, so endpoint >= blocking sends."""
        sim = ClusterSimulator(tiny_machine)
        blocking = sim.run_exchange(self._flows(), model="blocking")
        endpoint = sim.run_exchange(self._flows(), model="endpoint")
        assert endpoint.makespan_s >= blocking.send_busy_s.max() - 1e-12

    def test_overlap_not_above_blocking(self, tiny_machine):
        """With host overhead below the link latency, overlapping
        transfers can only help."""
        sim = ClusterSimulator(tiny_machine, host_overhead_s=1e-7)
        overlap = sim.run_exchange(self._flows(), model="overlap")
        blocking = sim.run_exchange(self._flows(), model="blocking")
        assert overlap.makespan_s <= blocking.makespan_s + 1e-12

    def test_empty_exchange(self, tiny_machine):
        res = ClusterSimulator(tiny_machine).run_exchange([])
        assert res.makespan_s == 0.0

    def test_out_of_range_rank(self, tiny_machine):
        with pytest.raises(ValueError):
            ClusterSimulator(tiny_machine).run_exchange([Flow(0, 7, 1.0)])

    def test_slow_link_dominates_overlap(self, tiny_machine):
        """Same bytes on a slow link must cost more than on a fast link."""
        sim = ClusterSimulator(tiny_machine)
        fast = sim.run_exchange([Flow(0, 1, 1e7)], model="overlap")
        slow = sim.run_exchange([Flow(0, 2, 1e7)], model="overlap")
        assert slow.makespan_s > fast.makespan_s

    def test_matrix_interface_matches_flows(self, tiny_machine):
        sim = ClusterSimulator(tiny_machine)
        bytes_m = np.zeros((4, 4))
        msgs_m = np.zeros((4, 4), dtype=np.int64)
        for f in self._flows():
            bytes_m[f.src, f.dst] = f.total_bytes
            msgs_m[f.src, f.dst] = f.num_messages
        a = sim.run_exchange(self._flows(), model="blocking")
        b = sim.run_exchange_matrix(bytes_m, messages_matrix=msgs_m, model="blocking")
        assert a.makespan_s == pytest.approx(b.makespan_s)

    def test_simulator_validation(self, tiny_machine):
        with pytest.raises(ValueError):
            ClusterSimulator(tiny_machine, nic_bandwidth_mbs=0)
        with pytest.raises(ValueError):
            ClusterSimulator(tiny_machine, host_overhead_s=-1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 3),
                st.floats(1.0, 1e7),
                st.integers(1, 50),
            ),
            max_size=12,
        )
    )
    def test_makespan_properties(self, raw):
        bw = np.full((4, 4), 500.0)
        lat = np.full((4, 4), 2e-6)
        np.fill_diagonal(lat, 0)
        sim = ClusterSimulator(LinkModel(bw, lat), host_overhead_s=1e-7)
        flows = [Flow(s, d, b, m) for s, d, b, m in raw if s != d]
        for model in ("overlap", "endpoint", "blocking"):
            res = sim.run_exchange(flows, model=model)
            assert res.makespan_s >= 0
            # makespan is at least any single flow's bare transfer time
            for f in flows:
                assert res.makespan_s >= sim.link_model.flow_time(f) * 0.999 or model == "overlap"


class TestTrafficTrace:
    def test_record_flows(self):
        tr = TrafficTrace(4)
        tr.record_flows([Flow(0, 1, 100.0, 2), Flow(1, 0, 50.0)])
        assert tr.bytes_matrix[0, 1] == 100.0
        assert tr.message_matrix[0, 1] == 2
        assert tr.total_bytes() == 150.0
        assert tr.num_exchanges == 1

    def test_record_matrix_ignores_diagonal(self):
        tr = TrafficTrace(3)
        m = np.full((3, 3), 5.0)
        tr.record_matrix(m)
        assert tr.bytes_matrix[1, 1] == 0.0
        assert tr.total_bytes() == 30.0

    def test_affinity_detects_alignment(self, tiny_machine):
        aligned = TrafficTrace(4)
        aligned.record_matrix(tiny_machine.bandwidth_mbs * 10)
        assert aligned.bandwidth_affinity(tiny_machine.bandwidth_mbs) > 0.9

        anti = TrafficTrace(4)
        anti.record_matrix((tiny_machine.bandwidth_mbs.max() * 1.1 - tiny_machine.bandwidth_mbs))
        assert anti.bandwidth_affinity(tiny_machine.bandwidth_mbs) < -0.9

    def test_affinity_zero_for_no_traffic(self, tiny_machine):
        assert TrafficTrace(4).bandwidth_affinity(tiny_machine.bandwidth_mbs) == 0.0

    def test_fast_fraction(self, tiny_machine):
        tr = TrafficTrace(4)
        m = np.zeros((4, 4))
        m[0, 1] = 100.0  # fast link only
        tr.record_matrix(m)
        assert tr.fraction_on_fast_links(tiny_machine.bandwidth_mbs) == pytest.approx(1.0)

    def test_render(self):
        tr = TrafficTrace(4)
        tr.record_flows([Flow(0, 1, 100.0)])
        out = tr.render(title="traffic")
        assert "traffic" in out


class TestCollectives:
    def test_tree_rounds(self):
        assert tree_rounds(1) == 0
        assert tree_rounds(2) == 1
        assert tree_rounds(8) == 3
        assert tree_rounds(9) == 4
        with pytest.raises(ValueError):
            tree_rounds(0)

    def test_barrier_positive(self, tiny_machine):
        assert barrier_time(tiny_machine) > 0

    def test_allreduce_scales_with_payload(self, tiny_machine):
        small = allreduce_time(tiny_machine, 8.0)
        big = allreduce_time(tiny_machine, 1e6)
        assert big > small

    def test_single_rank_free(self):
        link = LinkModel(np.array([[100.0]]))
        assert barrier_time(link) == 0.0
