"""Tests for the synthetic benchmark and the experiment runner."""

import numpy as np
import pytest

from repro.architecture.bandwidth import archer_like_bandwidth
from repro.architecture.topology import archer_like_topology
from repro.bench.runner import ExperimentRunner
from repro.bench.synthetic import SyntheticBenchmark, partition_traffic
from repro.core.hyperpraw import HyperPRAW
from repro.core.metrics import edge_partition_counts
from repro.hypergraph.model import Hypergraph
from repro.partitioning.simple import RoundRobinPartitioner
from repro.simcomm.network import LinkModel


class TestPartitionTraffic:
    def test_exact_counts(self, tiny_hypergraph):
        a = np.array([0, 0, 1, 1, 2, 2])
        bytes_m, msgs = partition_traffic(tiny_hypergraph, a, 3, message_bytes=10)
        # edge {0,1,2}: 2 pins in p0, 1 in p1 -> 2 msgs each way 0<->1
        # edge {2,3}: internal; edge {3,4,5}: 1 in p1, 2 in p2 -> 2 each way
        # edge {0,5}: 1 in p0, 1 in p2 -> 1 each way
        assert msgs[0, 1] == 2 and msgs[1, 0] == 2
        assert msgs[1, 2] == 2 and msgs[2, 1] == 2
        assert msgs[0, 2] == 1 and msgs[2, 0] == 1
        assert np.array_equal(bytes_m, msgs * 10.0)

    def test_symmetric(self, small_random):
        a = np.arange(small_random.num_vertices) % 5
        bytes_m, msgs = partition_traffic(small_random, a, 5)
        assert np.array_equal(msgs, msgs.T)

    def test_zero_diagonal(self, small_random):
        a = np.arange(small_random.num_vertices) % 5
        bytes_m, msgs = partition_traffic(small_random, a, 5)
        assert np.all(np.diag(bytes_m) == 0)
        assert np.all(np.diag(msgs) == 0)

    def test_single_partition_silent(self, small_random):
        bytes_m, msgs = partition_traffic(
            small_random, np.zeros(small_random.num_vertices, dtype=int), 1
        )
        assert bytes_m.sum() == 0

    def test_total_messages_formula(self, small_random):
        """Total logical messages = sum_e (|e|^2 - sum_k n_k^2)."""
        a = np.arange(small_random.num_vertices) % 4
        _, msgs = partition_traffic(small_random, a, 4)
        counts = edge_partition_counts(small_random, a, 4)
        cards = small_random.cardinalities()
        assert msgs.sum() == (cards**2 - (counts**2).sum(axis=1)).sum()

    def test_edge_weights_scale_bytes_not_messages(self):
        hg = Hypergraph(4, [[0, 1], [2, 3]], edge_weights=[3.0, 1.0])
        a = np.array([0, 1, 0, 1])
        bytes_m, msgs = partition_traffic(hg, a, 2, message_bytes=100)
        assert msgs[0, 1] == 2  # one logical message per cut pair per edge
        assert bytes_m[0, 1] == 3.0 * 100 + 1.0 * 100


class TestSyntheticBenchmark:
    def test_runtime_scales_with_timesteps(self, tiny_machine, tiny_hypergraph):
        a = np.array([0, 1, 2, 3, 0, 1])
        one = SyntheticBenchmark(tiny_machine, timesteps=1).run(tiny_hypergraph, a, 4)
        ten = SyntheticBenchmark(tiny_machine, timesteps=10).run(tiny_hypergraph, a, 4)
        assert ten.runtime_s == pytest.approx(10 * one.runtime_s)

    def test_single_partition_only_barrier(self, tiny_machine, tiny_hypergraph):
        out = SyntheticBenchmark(tiny_machine, timesteps=2).run(
            tiny_hypergraph, np.zeros(6, dtype=int), 1
        )
        assert out.total_bytes == 0
        assert out.runtime_s == pytest.approx(2 * out.barrier_s)

    def test_padding_to_machine_size(self, tiny_machine, tiny_hypergraph):
        out = SyntheticBenchmark(tiny_machine).run(
            tiny_hypergraph, np.arange(6) % 2, 2
        )
        assert out.trace.bytes_matrix.shape == (4, 4)

    def test_too_many_parts_rejected(self, tiny_machine, tiny_hypergraph):
        with pytest.raises(ValueError):
            SyntheticBenchmark(tiny_machine).run(tiny_hypergraph, np.arange(6) % 5, 5)

    def test_worse_placement_is_slower(self, tiny_machine):
        """Bisecting across the slow link must cost more simulated time
        than bisecting along it — the paper's entire premise."""
        hg = Hypergraph(8, [[i, i + 4] for i in range(4)])  # 4 cross pairs
        bench = SyntheticBenchmark(tiny_machine, timesteps=1, include_barrier=False)
        # fast: pairs land on ranks (0,1) and (2,3)
        fast = bench.run(hg, np.array([0, 0, 1, 1, 1, 1, 0, 0]) , 4)
        # slow: pairs land on ranks (0,2) and (1,3)
        slow = bench.run(hg, np.array([0, 0, 1, 1, 2, 2, 3, 3]), 4)
        assert fast.runtime_s < slow.runtime_s

    def test_trace_accumulates_all_steps(self, tiny_machine, tiny_hypergraph):
        a = np.arange(6) % 4
        out = SyntheticBenchmark(tiny_machine, timesteps=3).run(tiny_hypergraph, a, 4)
        single, _ = partition_traffic(tiny_hypergraph, a, 4, message_bytes=1024)
        assert out.trace.bytes_matrix[:4, :4].sum() == pytest.approx(3 * single.sum())


@pytest.fixture(scope="module")
def runner_world():
    topo = archer_like_topology(num_nodes=1)  # 24 ranks
    model = archer_like_bandwidth(topo)
    return ExperimentRunner(
        model, num_jobs=2, iterations=2, timesteps=2, seed=99
    )


class TestExperimentRunner:
    def test_jobs_are_profiled_and_distinct(self, runner_world):
        jobs = runner_world.make_jobs()
        assert len(jobs) == 2
        assert not np.array_equal(
            jobs[0].link_model.bandwidth_mbs, jobs[1].link_model.bandwidth_mbs
        )
        for job in jobs:
            assert job.profiling_time_s > 0
            assert np.all(np.diag(job.cost_matrix) == 0)

    def test_record_count(self, runner_world, small_random):
        records = runner_world.run(
            {"inst": small_random}, {"rr": RoundRobinPartitioner()}
        )
        assert len(records) == 2 * 2  # jobs x iterations

    def test_speedups_relative_to_baseline(self, runner_world, small_random):
        records = runner_world.run(
            {"inst": small_random},
            {"rr": RoundRobinPartitioner(), "praw": HyperPRAW.basic()},
        )
        sp = ExperimentRunner.speedups(records, baseline="rr")
        assert sp[("inst", "rr")] == pytest.approx(1.0)
        assert ("inst", "praw") in sp

    def test_blind_mapping_permutes_aware_identity(self, runner_world, small_random):
        """Blind partitioners get a rank permutation; the aware variant's
        assignment reaches the benchmark untouched."""
        job = runner_world.make_jobs()[0]
        blind = RoundRobinPartitioner().partition(small_random, runner_world.num_parts)
        mapped = runner_world._map_to_ranks(blind, 0, "i", "rr")
        assert not np.array_equal(mapped, blind.assignment)
        # same partition *shape*: permuting labels preserves block sizes
        assert sorted(np.bincount(mapped, minlength=24)) == sorted(
            np.bincount(blind.assignment, minlength=24)
        )
        aware = HyperPRAW.aware().partition(
            small_random, runner_world.num_parts, cost_matrix=job.cost_matrix
        )
        assert np.array_equal(
            runner_world._map_to_ranks(aware, 0, "i", "aware"), aware.assignment
        )

    def test_identity_mapping_mode(self, small_random):
        topo = archer_like_topology(num_nodes=1)
        runner = ExperimentRunner(
            archer_like_bandwidth(topo),
            num_jobs=1,
            iterations=1,
            blind_rank_mapping="identity",
            seed=1,
        )
        blind = RoundRobinPartitioner().partition(small_random, 24)
        assert np.array_equal(
            runner._map_to_ranks(blind, 0, "i", "rr"), blind.assignment
        )

    def test_validation(self):
        topo = archer_like_topology(num_nodes=1)
        model = archer_like_bandwidth(topo)
        with pytest.raises(ValueError):
            ExperimentRunner(model, blind_rank_mapping="sorted")
        with pytest.raises(ValueError):
            ExperimentRunner(model, num_parts=100)
        with pytest.raises(ValueError):
            ExperimentRunner(model, num_jobs=0)

    def test_deterministic(self, small_random):
        topo = archer_like_topology(num_nodes=1)

        def once():
            runner = ExperimentRunner(
                archer_like_bandwidth(topo), num_jobs=1, iterations=1, seed=5, timesteps=2
            )
            return runner.run({"i": small_random}, {"rr": RoundRobinPartitioner()})

        a, b = once(), once()
        assert [r.runtime_s for r in a] == [r.runtime_s for r in b]
