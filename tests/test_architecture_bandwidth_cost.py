"""Tests for bandwidth synthesis and cost-matrix normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.architecture.bandwidth import (
    BandwidthModel,
    LevelLinkSpec,
    archer_like_bandwidth,
)
from repro.architecture.cost import (
    cost_matrix_from_bandwidth,
    uniform_cost_matrix,
    validate_cost_matrix,
)
from repro.architecture.topology import archer_like_topology, flat_topology


class TestLevelLinkSpec:
    def test_validation(self):
        LevelLinkSpec(100.0, 1.0)
        with pytest.raises(ValueError):
            LevelLinkSpec(0.0, 1.0)
        with pytest.raises(ValueError):
            LevelLinkSpec(100.0, -1.0)


class TestBandwidthModel:
    def test_requires_one_spec_per_class(self):
        topo = flat_topology(4)
        with pytest.raises(ValueError, match="class specs"):
            BandwidthModel(topo, [LevelLinkSpec(100, 1), LevelLinkSpec(50, 2)])

    def test_rejects_increasing_bandwidth_with_distance(self):
        from repro.architecture.topology import MachineTopology

        topo = MachineTopology(("proc", "node"), (4, 2))
        specs = [LevelLinkSpec(100, 1), LevelLinkSpec(500, 1)]
        with pytest.raises(ValueError, match="non-increasing"):
            BandwidthModel(topo, specs)

    def test_matrix_structure_noise_free(self):
        from repro.architecture.topology import MachineTopology

        topo = MachineTopology(("proc", "node"), (12, 2))  # 24 cores
        model = BandwidthModel(
            topo, [LevelLinkSpec(3000, 1), LevelLinkSpec(1800, 2)], noise_sigma=0
        )
        bw = model.bandwidth_matrix()
        assert bw[0, 1] == 3000.0  # same processor
        assert bw[0, 12] == 1800.0  # across processors
        assert np.array_equal(bw, bw.T)

    def test_noise_is_symmetric_and_seeded(self):
        model = archer_like_bandwidth(archer_like_topology(num_nodes=2))
        a = model.bandwidth_matrix(seed=5)
        b = model.bandwidth_matrix(seed=5)
        c = model.bandwidth_matrix(seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.allclose(a, a.T)

    def test_latency_matrix(self):
        model = archer_like_bandwidth(archer_like_topology(num_nodes=2))
        lat = model.latency_matrix(seed=1)
        assert np.all(np.diag(lat) == 0)
        assert (lat >= 0).all()
        # farther pairs have higher nominal latency
        assert lat[0, 24].mean() > lat[0, 1]

    def test_heterogeneity_ratio(self):
        """The ARCHER preset has the ~13x fast/slow ratio of Figure 1A."""
        model = archer_like_bandwidth(archer_like_topology(num_nodes=8), noise_sigma=0)
        bw = model.bandwidth_matrix()
        off = ~np.eye(bw.shape[0], dtype=bool)
        ratio = bw[off].max() / bw[off].min()
        assert 10 <= ratio <= 16


class TestCostMatrix:
    def test_normalisation_bounds(self):
        bw = np.array([[0, 100, 200], [100, 0, 300], [200, 300, 0]], dtype=float)
        np.fill_diagonal(bw, 500)
        cost = cost_matrix_from_bandwidth(bw)
        off = ~np.eye(3, dtype=bool)
        assert cost[off].min() == pytest.approx(1.0)
        assert cost[off].max() == pytest.approx(2.0)
        assert np.all(np.diag(cost) == 0)

    def test_fastest_is_one_slowest_is_two(self):
        bw = np.full((3, 3), 100.0)
        bw[0, 1] = bw[1, 0] = 1000.0
        cost = cost_matrix_from_bandwidth(bw)
        assert cost[0, 1] == pytest.approx(1.0)
        assert cost[0, 2] == pytest.approx(2.0)

    def test_homogeneous_gives_all_ones(self):
        cost = cost_matrix_from_bandwidth(np.full((4, 4), 250.0))
        off = ~np.eye(4, dtype=bool)
        assert np.allclose(cost[off], 1.0)

    def test_single_unit(self):
        assert cost_matrix_from_bandwidth(np.array([[5.0]])).tolist() == [[0.0]]

    def test_rejects_nonpositive(self):
        bw = np.full((3, 3), 10.0)
        bw[0, 1] = 0.0
        with pytest.raises(ValueError):
            cost_matrix_from_bandwidth(bw)

    def test_magnitude_invariance(self):
        """The paper's rationale: the cost matrix must not depend on the
        absolute bandwidth magnitude."""
        bw = np.abs(np.random.default_rng(0).normal(500, 100, (5, 5))) + 10
        bw = 0.5 * (bw + bw.T)
        assert np.allclose(
            cost_matrix_from_bandwidth(bw), cost_matrix_from_bandwidth(bw * 1000)
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=2**31))
    def test_property_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        bw = rng.uniform(1.0, 1000.0, (n, n))
        bw = 0.5 * (bw + bw.T)
        cost = cost_matrix_from_bandwidth(bw)
        validate_cost_matrix(cost, num_units=n)
        off = ~np.eye(n, dtype=bool)
        assert (cost[off] >= 1.0 - 1e-12).all()
        assert (cost[off] <= 2.0 + 1e-12).all()
        # monotone: faster link => lower cost
        flat_bw = bw[off]
        flat_c = cost[off]
        order = np.argsort(flat_bw)
        assert (np.diff(flat_c[order]) <= 1e-12).all()


class TestUniformCost:
    def test_structure(self):
        u = uniform_cost_matrix(5)
        assert np.all(np.diag(u) == 0)
        off = ~np.eye(5, dtype=bool)
        assert np.all(u[off] == 1.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            uniform_cost_matrix(0)


class TestValidateCostMatrix:
    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            validate_cost_matrix(np.ones((3, 3)))

    def test_rejects_asymmetric(self):
        c = uniform_cost_matrix(3)
        c[0, 1] = 1.5
        with pytest.raises(ValueError, match="symmetric"):
            validate_cost_matrix(c)

    def test_rejects_negative(self):
        c = uniform_cost_matrix(3)
        c[0, 1] = c[1, 0] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            validate_cost_matrix(c)
