"""End-to-end tests for the streaming partition service (repro.service).

Everything here drives a real in-process :class:`PartitionService` bound
to an ephemeral port over actual HTTP — upload → poll → assignment for
every registered partitioner, the malformed-upload 4xx paths, digest
reuse hitting the chunk store with **no second text parse** (asserted by
wrapping the parser in a call counter), concurrent uploads on the job
pool, and the out-of-core bound: at a small ``chunk_size`` the service
partitions an upload while its peak resident pins stay a fraction of the
pin count — the file is never materialised.
"""

import http.client
import json
import socket
import threading
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro.service.handlers as handlers_mod
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.model import Hypergraph
from repro.service import PartitionService, ServiceConfig, openapi_spec


# ----------------------------------------------------------------------
# fixtures + HTTP helpers
# ----------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    """An in-process server on an ephemeral port with its own cache."""
    svc = PartitionService(
        ServiceConfig(port=0, workers=2, cache_dir=tmp_path / "cache")
    )
    with svc:
        yield svc


@pytest.fixture
def tiny_hgr(tiny_hypergraph, tmp_path):
    """The 6-vertex conftest hypergraph as hMetis bytes."""
    path = tmp_path / "tiny.hgr"
    write_hmetis(tiny_hypergraph, path)
    return path.read_bytes()


@pytest.fixture
def random_hgr(small_random, tmp_path):
    """A scaled sparsine instance (a few thousand pins) as hMetis bytes."""
    path = tmp_path / "sparsine.hgr"
    write_hmetis(small_random, path)
    return path.read_bytes(), small_random


def _request(url, data=None, method=None):
    """``(status, json_or_text)`` for any response, 4xx/5xx included."""
    req = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    try:
        with urllib.request.urlopen(req) as resp:
            body = resp.read()
            status = resp.status
    except urllib.error.HTTPError as err:
        body = err.read()
        status = err.code
    try:
        return status, json.loads(body)
    except json.JSONDecodeError:
        return status, body.decode()


def _wait(svc, job, wait, timeout=120):
    """Poll a job to a terminal state via the bounded ``wait_for`` fixture."""

    def _terminal():
        status, doc = _request(svc.url + job["links"]["self"])
        assert status == 200
        return doc if doc["status"] in ("done", "failed") else None

    return wait(
        _terminal,
        timeout=timeout,
        interval=0.05,
        message=f"job {job['id']} to finish",
    )


def _assignment_lines(svc, job):
    status, text = _request(svc.url + job["links"]["assignment"])
    assert status == 200
    return text.splitlines()


# ----------------------------------------------------------------------
# upload -> poll -> result, every registered partitioner
# ----------------------------------------------------------------------
class TestPartitionLifecycle:
    @pytest.mark.parametrize("partitioner", ["onepass", "buffered", "sharded"])
    def test_upload_poll_assignment(self, service, tiny_hgr, partitioner, wait_for):
        # chunk_size=2 gives the 6-vertex graph 3 chunks, so sharded
        # runs genuinely fan out over 2 workers instead of clamping.
        status, job = _request(
            f"{service.url}/v1/partitions?k=2&partitioner={partitioner}"
            "&max_iterations=5&chunk_size=2",
            data=tiny_hgr,
        )
        assert status == 202
        assert job["status"] in ("queued", "running", "done")
        done = _wait(service, job, wait_for)
        assert done["status"] == "done", done["error"]
        assert done["metrics"]["algorithm"].startswith("stream")
        assert done["metrics"]["num_vertices"] == 6
        lines = _assignment_lines(service, done)
        assert len(lines) == 6
        assert set(lines) <= {"0", "1"}

    def test_sync_returns_finished_job(self, service, tiny_hgr):
        status, job = _request(
            f"{service.url}/v1/partitions?k=2&sync=1", data=tiny_hgr
        )
        assert status == 200
        assert job["status"] == "done"
        assert job["digest"].startswith("sha256:")
        assert job["request"]["source"]["num_pins"] == 10
        assert "wall_time_s" in job["metrics"]

    def test_kernel_knob_echoed_and_observable(self, service, tiny_hgr):
        """kernel= is validated, echoed, and surfaces in healthz stats."""
        status, job = _request(
            f"{service.url}/v1/partitions?k=2&sync=1&kernel=python",
            data=tiny_hgr,
        )
        assert status == 200
        assert job["request"]["kernel"] == "python"
        # Streaming partitioners run the LRU presence table, which
        # always resolves to the python kernel — honestly reported.
        assert job["metrics"]["kernel_mode"] == "python"
        assert job["metrics"]["pass_seconds"] >= 0.0
        _, health = _request(f"{service.url}/v1/healthz")
        assert health["stats"]["kernel_python_runs"] >= 1
        assert health["stats"]["pass_seconds"] >= 0.0
        status, body = _request(
            f"{service.url}/v1/partitions?k=2&sync=1&kernel=bogus",
            data=tiny_hgr,
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_chunked_transfer_encoding_upload(self, service, tiny_hgr):
        conn = http.client.HTTPConnection("127.0.0.1", service.port)
        blocks = iter([tiny_hgr[:9], tiny_hgr[9:]])
        conn.request(
            "POST",
            "/v1/partitions?k=2&sync=1",
            body=blocks,
            encode_chunked=True,
            headers={"Transfer-Encoding": "chunked"},
        )
        resp = conn.getresponse()
        job = json.load(resp)
        assert resp.status == 200
        assert job["status"] == "done"
        conn.close()

    def test_seed_determinism_across_replays(self, service, tiny_hgr):
        _, first = _request(
            f"{service.url}/v1/partitions?k=2&sync=1&seed=7", data=tiny_hgr
        )
        _, second = _request(
            f"{service.url}/v1/partitions?k=2&sync=1&seed=7"
            f"&store={first['digest']}",
            method="POST",
        )
        assert _assignment_lines(service, first) == _assignment_lines(
            service, second
        )


# ----------------------------------------------------------------------
# error paths
# ----------------------------------------------------------------------
class TestErrorPaths:
    def _error(self, status_body):
        status, body = status_body
        return status, body["error"]["code"]

    def test_malformed_upload_400(self, service):
        status, code = self._error(
            _request(f"{service.url}/v1/partitions?k=2&sync=1", data=b"junk\n")
        )
        assert (status, code) == (400, "invalid_upload")

    def test_missing_k_400(self, service, tiny_hgr):
        status, code = self._error(
            _request(f"{service.url}/v1/partitions", data=tiny_hgr)
        )
        assert (status, code) == (400, "bad_request")

    def test_unknown_parameter_400(self, service, tiny_hgr):
        status, code = self._error(
            _request(f"{service.url}/v1/partitions?k=2&wat=1", data=tiny_hgr)
        )
        assert (status, code) == (400, "bad_request")

    def test_k_exceeding_vertices_400(self, service, tiny_hgr):
        status, code = self._error(
            _request(f"{service.url}/v1/partitions?k=99", data=tiny_hgr)
        )
        assert (status, code) == (400, "bad_request")

    def test_fennel_restreamer_conflict_400(self, service, tiny_hgr):
        status, code = self._error(
            _request(
                f"{service.url}/v1/partitions?k=2&partitioner=buffered"
                "&scorer=fennel",
                data=tiny_hgr,
            )
        )
        assert (status, code) == (400, "bad_request")

    def test_unknown_store_digest_404(self, service):
        status, code = self._error(
            _request(
                f"{service.url}/v1/partitions?k=2&store={'0' * 64}",
                method="POST",
            )
        )
        assert (status, code) == (404, "not_found")

    def test_unknown_job_404(self, service):
        status, code = self._error(
            _request(f"{service.url}/v1/partitions/nope")
        )
        assert (status, code) == (404, "not_found")

    def test_unknown_route_404(self, service):
        status, code = self._error(_request(f"{service.url}/v2/other"))
        assert (status, code) == (404, "not_found")

    def test_method_not_allowed_405(self, service):
        status, code = self._error(
            _request(f"{service.url}/v1/healthz", method="POST", data=b"")
        )
        assert (status, code) == (405, "method_not_allowed")
        status, code = self._error(_request(f"{service.url}/v1/partitions"))
        assert (status, code) == (405, "method_not_allowed")

    def test_body_without_framing_411(self, service):
        conn = http.client.HTTPConnection("127.0.0.1", service.port)
        # putrequest/endheaders sends neither Content-Length nor chunked
        # framing (plain conn.request would add Content-Length: 0).
        conn.putrequest("POST", "/v1/partitions?k=2")
        conn.endheaders()
        resp = conn.getresponse()
        body = json.load(resp)
        assert resp.status == 411
        assert body["error"]["code"] == "length_required"
        conn.close()

    def test_oversized_upload_413(self, tmp_path, tiny_hgr):
        svc = PartitionService(
            ServiceConfig(
                port=0,
                workers=1,
                cache_dir=tmp_path / "c",
                max_body_bytes=8,
            )
        )
        with svc:
            status, code = (
                _request(f"{svc.url}/v1/stores", data=tiny_hgr)[0],
                _request(f"{svc.url}/v1/stores", data=tiny_hgr)[1]["error"]["code"],
            )
        assert (status, code) == (413, "payload_too_large")

    def test_truncated_body_400(self, service, tiny_hgr):
        """A body shorter than its declared Content-Length must never be
        stored/partitioned as if complete."""
        with socket.create_connection(("127.0.0.1", service.port)) as s:
            s.sendall(
                b"POST /v1/partitions?k=2&sync=1 HTTP/1.0\r\n"
                b"Content-Length: 100000\r\n\r\n" + tiny_hgr
            )
            s.shutdown(socket.SHUT_WR)
            resp = b""
            while chunk := s.recv(4096):
                resp += chunk
        assert b"400" in resp.split(b"\r\n", 1)[0]
        assert b"body truncated" in resp
        _, health = _request(f"{service.url}/v1/healthz")
        assert health["stores"] == 0, "truncated upload must not be stored"

    def test_assignment_before_done_409(self, service, tiny_hgr):
        # Handler-level: a created-but-never-run job is durably queued.
        job = service.api.jobs.create({"k": 2})
        status, body = _request(
            f"{service.url}/v1/partitions/{job.id}/assignment"
        )
        assert status == 409
        assert body["error"]["code"] == "conflict"

    def test_failed_job_reports_error(self, service, tiny_hgr):
        # k=5 passes the |V|>=k check but the one-pass balance cap makes
        # a 6-vertex/5-part split infeasible -> the job itself fails.
        status, job = _request(
            f"{service.url}/v1/partitions?k=5&sync=1&partitioner=onepass",
            data=tiny_hgr,
        )
        assert status == 200
        if job["status"] == "failed":  # cap-dependent; either is legal
            assert job["error"]["message"]


# ----------------------------------------------------------------------
# digest reuse: the store is hit, the parser is not
# ----------------------------------------------------------------------
class TestDigestReuse:
    def test_repartition_by_digest_skips_text_parse(
        self, service, tiny_hgr, monkeypatch
    ):
        calls = []
        real = handlers_mod.UPLOAD_FORMATS["hmetis"]

        def counting(source, **kwargs):
            calls.append(1)
            return real(source, **kwargs)

        monkeypatch.setitem(handlers_mod.UPLOAD_FORMATS, "hmetis", counting)

        status, store = _request(f"{service.url}/v1/stores", data=tiny_hgr)
        assert status == 201 and store["created"] is True
        assert len(calls) == 1

        # Re-partitions with different k / scorer / partitioner: all
        # replay the mmap store; the text parser never runs again.
        for query in (
            f"k=2&sync=1&store={store['digest']}",
            f"k=3&sync=1&scorer=fennel&store={store['digest']}",
            f"k=2&sync=1&partitioner=buffered&store={store['digest']}",
        ):
            status, job = _request(
                f"{service.url}/v1/partitions?{query}", method="POST"
            )
            assert status == 200
            assert job["status"] == "done", job["error"]
        assert len(calls) == 1, "digest reuse must not re-parse text"

        _, health = _request(f"{service.url}/v1/healthz")
        assert health["stats"]["text_ingests"] == 1
        assert health["stats"]["store_replays"] == 3
        assert health["stores"] == 1

    def test_identical_upload_is_deduplicated(self, service, tiny_hgr):
        status1, store1 = _request(f"{service.url}/v1/stores", data=tiny_hgr)
        status2, store2 = _request(f"{service.url}/v1/stores", data=tiny_hgr)
        assert (status1, store1["created"]) == (201, True)
        assert (status2, store2["created"]) == (200, False)
        assert store1["digest"] == store2["digest"]
        _, health = _request(f"{service.url}/v1/healthz")
        assert health["stores"] == 1


# ----------------------------------------------------------------------
# concurrency on the job pool
# ----------------------------------------------------------------------
class TestConcurrentUploads:
    def test_parallel_uploads_all_complete(self, service, tmp_path, wait_for):
        rng = np.random.default_rng(0)
        uploads = []
        for i in range(5):
            n = 12 + i
            edges = [
                sorted(set(rng.integers(0, n, size=3).tolist()))
                for _ in range(10)
            ]
            path = tmp_path / f"g{i}.hgr"
            write_hmetis(Hypergraph(n, edges, name=f"g{i}"), path)
            uploads.append((n, path.read_bytes()))

        jobs = [None] * len(uploads)
        errors = []

        def upload(i, raw):
            try:
                status, job = _request(
                    f"{service.url}/v1/partitions?k=2&max_iterations=5",
                    data=raw,
                )
                assert status == 202, job
                jobs[i] = job
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append((i, exc))

        threads = [
            threading.Thread(target=upload, args=(i, raw))
            for i, (_, raw) in enumerate(uploads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        for (n, _), job in zip(uploads, jobs):
            done = _wait(service, job, wait_for)
            assert done["status"] == "done", done["error"]
            assert len(_assignment_lines(service, done)) == n
        _, health = _request(f"{service.url}/v1/healthz")
        assert health["jobs"]["done"] == len(uploads)
        assert health["jobs"]["failed"] == 0
        # Five distinct graphs -> five distinct digests in the store.
        assert health["stores"] == len(uploads)


# ----------------------------------------------------------------------
# the out-of-core bound over HTTP
# ----------------------------------------------------------------------
class TestMemoryBound:
    def test_upload_is_never_materialised(self, service, random_hgr):
        raw, hg = random_hgr
        status, job = _request(
            f"{service.url}/v1/partitions?k=4&sync=1"
            "&chunk_size=32&buffer_pins=64&pin_budget=256",
            data=raw,
        )
        assert status == 200
        assert job["status"] == "done", job["error"]
        source = job["request"]["source"]
        assert source["num_pins"] == hg.num_pins
        # Ingest bound: spill buffer + one pin-budgeted chunk, not the
        # pin list.  The margin (4x) keeps the assertion robust to hub
        # buckets while still ruling out any full materialisation.
        assert source["peak_resident_pins"] < hg.num_pins / 4
        # Replay bound: the partition run streams mmap chunks, never the
        # whole store at once.
        assert job["metrics"]["peak_resident_pins"] < hg.num_pins / 4


# ----------------------------------------------------------------------
# the partitioner-family registry is the single service surface
# ----------------------------------------------------------------------
class TestFamilyRegistry:
    """Registering a family makes it servable — no service change."""

    def test_every_registered_family_servable(self, service, tiny_hgr):
        from repro.partitioning.families import family_names

        for name in family_names():
            status, job = _request(
                f"{service.url}/v1/partitions?k=2&sync=1"
                f"&partitioner={name}&chunk_size=2&max_iterations=5",
                data=tiny_hgr,
            )
            assert status == 200, (name, job)
            assert job["status"] == "done", (name, job.get("error"))
            assert job["request"]["partitioner"] == name
            lines = _assignment_lines(service, job)
            assert len(lines) == 6 and set(lines) <= {"0", "1"}, name

    def test_refine_knob_polishes_any_family(self, service, tiny_hgr):
        status, job = _request(
            f"{service.url}/v1/partitions?k=2&sync=1&partitioner=minmax"
            "&chunk_size=2&refine=1&refine_passes=2",
            data=tiny_hgr,
        )
        assert status == 200
        assert job["status"] == "done", job.get("error")
        assert job["metrics"]["algorithm"].endswith("+fm")
        assert job["request"]["refine"] is True
        assert job["request"]["refine_passes"] == 2

    def test_openapi_enum_matches_registry(self, service):
        from repro.partitioning.families import family_names

        status, spec = _request(f"{service.url}/v1/openapi.json")
        assert status == 200
        params = spec["paths"]["/v1/partitions"]["post"]["parameters"]
        enum = next(p for p in params if p["name"] == "partitioner")[
            "schema"
        ]["enum"]
        assert tuple(enum) == family_names()

    def test_dynamic_family_immediately_servable(
        self, tmp_path, tiny_hgr, monkeypatch
    ):
        """A family registered at runtime is servable on the next
        request and appears in the served OpenAPI enum — the validation
        and the spec both read the live registry, never a snapshot."""
        import dataclasses

        from repro.partitioning import families as fam

        toy = dataclasses.replace(fam.PARTITIONERS["onepass"], name="toy")
        monkeypatch.setitem(fam.PARTITIONERS, "toy", toy)
        # thread pool: jobs must see the monkeypatched registry
        svc = PartitionService(
            ServiceConfig(
                port=0, workers=1, pool="thread", cache_dir=tmp_path / "dyn"
            )
        )
        with svc:
            status, spec = _request(f"{svc.url}/v1/openapi.json")
            params = spec["paths"]["/v1/partitions"]["post"]["parameters"]
            enum = next(p for p in params if p["name"] == "partitioner")[
                "schema"
            ]["enum"]
            assert "toy" in enum
            status, job = _request(
                f"{svc.url}/v1/partitions?k=2&sync=1&partitioner=toy",
                data=tiny_hgr,
            )
            assert status == 200
            assert job["status"] == "done", job.get("error")
            assert job["request"]["partitioner"] == "toy"
            lines = _assignment_lines(svc, job)
            assert len(lines) == 6 and set(lines) <= {"0", "1"}


# ----------------------------------------------------------------------
# meta endpoints
# ----------------------------------------------------------------------
class TestMetaEndpoints:
    def test_healthz(self, service):
        status, health = _request(f"{service.url}/v1/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["pool"] in ("process", "thread")
        assert health["queue_depth"] == 0
        assert health["auth"] is False
        assert health["store_bytes"] == 0
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}
        assert set(health["stats"]) == {
            "uploads",
            "text_ingests",
            "store_replays",
            "pass_seconds",
            "kernel_python_runs",
            "kernel_njit_runs",
            "rejected_requests",
            "evictions",
            "jobs_crashed",
        }

    def test_version_single_sourced(self, service):
        """healthz, the spec and setup.py must agree on one version."""
        from repro.service.openapi import SERVICE_VERSION

        _, health = _request(f"{service.url}/v1/healthz")
        assert health["version"] == SERVICE_VERSION
        assert openapi_spec()["info"]["version"] == SERVICE_VERSION
        setup_text = (
            Path(__file__).resolve().parent.parent / "setup.py"
        ).read_text()
        assert f'version="{SERVICE_VERSION}"' in setup_text

    def test_openapi_served_verbatim(self, service):
        status, spec = _request(f"{service.url}/v1/openapi.json")
        assert status == 200
        assert spec == openapi_spec()

    def test_spec_routes_all_dispatch(self, service, tiny_hgr):
        """Every path x method in the spec is actually routed.

        A spec'd route that 404s would mean the contract drifted from
        the app; parameters here are chosen so each route returns one of
        its *documented* status codes.
        """
        _, seed_job = _request(
            f"{service.url}/v1/partitions?k=2&sync=1", data=tiny_hgr
        )
        digest = seed_job["digest"]
        spec = openapi_spec()
        live = {
            ("post", "/v1/partitions"): lambda: _request(
                f"{service.url}/v1/partitions?k=2&sync=1&store={digest}",
                method="POST",
            ),
            ("get", "/v1/partitions/{job_id}"): lambda: _request(
                f"{service.url}/v1/partitions/{seed_job['id']}"
            ),
            ("get", "/v1/partitions/{job_id}/assignment"): lambda: _request(
                f"{service.url}/v1/partitions/{seed_job['id']}/assignment"
            ),
            ("post", "/v1/stores"): lambda: _request(
                f"{service.url}/v1/stores", data=tiny_hgr
            ),
            ("get", "/v1/healthz"): lambda: _request(
                f"{service.url}/v1/healthz"
            ),
            ("get", "/v1/metrics"): lambda: _request(
                f"{service.url}/v1/metrics"
            ),
            ("get", "/v1/openapi.json"): lambda: _request(
                f"{service.url}/v1/openapi.json"
            ),
        }
        spec_routes = {
            (method, path)
            for path, ops in spec["paths"].items()
            for method in ops
        }
        assert spec_routes == set(live), "spec routes != exercised routes"
        for (method, path), call in live.items():
            status, _body = call()
            documented = spec["paths"][path][method]["responses"]
            assert str(status) in documented, (method, path, status)


# ----------------------------------------------------------------------
# the bench scenario (tier-1 smoke: it must run and make sense)
# ----------------------------------------------------------------------
class TestServiceBench:
    def test_compare_service_smoke(self):
        from repro.bench.service import compare_service

        report = compare_service(
            instances=("2cubes_sphere",),
            scale=0.03,
            k=4,
            chunk_size=64,
            threads=2,
            requests=4,
        )
        assert len(report.records) == 1
        record = report.records[0]
        assert record.num_pins > 0
        assert record.store_ingest_s > 0
        assert record.upload_partition_s > 0
        assert record.replay_partition_s > 0
        assert report.throughput.errors == 0
        assert report.throughput.rps > 0
        rendered = report.render()
        assert "service latency ladder" in rendered
        assert "requests/s" in rendered
