"""Tests for the PartitionResult / IterationRecord containers."""

import numpy as np
import pytest

from repro.core.result import IterationRecord, PartitionResult


def _result(assignment, p=4, iterations=None):
    return PartitionResult(
        assignment=np.asarray(assignment),
        num_parts=p,
        algorithm="test",
        iterations=iterations or [],
    )


class TestPartitionResult:
    def test_basic(self):
        res = _result([0, 1, 2, 3, 0])
        assert res.num_vertices == 5
        assert res.part_sizes().tolist() == [2, 1, 1, 1]

    def test_assignment_coerced_to_int32(self):
        res = _result(np.array([0.0, 1.0, 2.0]))
        assert res.assignment.dtype == np.int32

    def test_empty_partitions_allowed(self):
        res = _result([0, 0, 0], p=3)
        assert res.part_sizes().tolist() == [3, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            _result([0, 4], p=4)
        with pytest.raises(ValueError):
            _result([-1, 0], p=4)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            _result(np.zeros((2, 2), dtype=int))

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            _result([0], p=0)

    def test_history_helpers(self):
        records = [
            IterationRecord(1, 10.0, 2.0, 500.0, "tempering"),
            IterationRecord(2, 17.0, 1.05, 400.0, "refinement"),
        ]
        res = _result([0, 1], p=2, iterations=records)
        iters, costs = res.history_series()
        assert iters == [1, 2]
        assert costs == [500.0, 400.0]
        assert res.final_pc_cost() == 400.0

    def test_final_pc_cost_nan_without_history(self):
        assert np.isnan(_result([0, 1]).final_pc_cost())
