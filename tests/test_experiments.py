"""Integration tests: the figure/table drivers end to end (tiny worlds)."""

import numpy as np
import pytest

from repro.experiments import ablations, figure1, figure3, figure4, figure5, figure6, table1
from repro.experiments.cli import build_parser, main
from repro.experiments.common import ExperimentContext, default_partitioners


@pytest.fixture(scope="module")
def tiny_ctx():
    """One node (24 cores), 20%-scale instances, single job/iteration."""
    return ExperimentContext(
        num_nodes=1,
        scale=0.2,
        num_jobs=1,
        iterations=1,
        timesteps=2,
        max_iterations=40,
    )


class TestContext:
    def test_num_parts(self, tiny_ctx):
        assert tiny_ctx.num_parts == 24

    def test_partitioners_roster(self, tiny_ctx):
        roster = tiny_ctx.partitioners()
        assert set(roster) == {"multilevel-rb", "hyperpraw-basic", "hyperpraw-aware"}

    def test_one_job(self, tiny_ctx):
        job = tiny_ctx.one_job()
        assert job.cost_matrix.shape == (24, 24)


class TestTable1:
    def test_runs_and_renders(self, tiny_ctx):
        res = table1.run(tiny_ctx)
        out = res.render()
        assert "Table 1" in out
        assert "sparsine" in out
        assert len(res.stats) == 10


class TestFigure1(object):
    def test_runs_and_renders(self, tiny_ctx):
        res = figure1.run(tiny_ctx)
        out = res.render(max_size=16)
        assert "Figure 1A" in out and "Figure 1B" in out
        assert res.bandwidth_mbs.shape == (24, 24)
        # naive mapping: traffic should not be strongly aligned with bw
        assert res.affinity < 0.5


class TestFigure3:
    def test_refinement_ordering(self, tiny_ctx):
        res = figure3.run(tiny_ctx, instances=("2cubes_sphere", "sparsine"))
        out = res.render()
        assert "refinement 0.95" in out
        for inst in ("2cubes_sphere", "sparsine"):
            costs = res.final_costs[inst]
            # refinement must not be worse than stopping at tolerance
            assert costs["refinement-0.95"] <= costs["no-refinement"] + 1e-9


class TestFigure4:
    def test_runs(self, tiny_ctx):
        ctx = ExperimentContext(
            num_nodes=1,
            scale=0.2,
            num_jobs=1,
            iterations=1,
            timesteps=2,
            max_iterations=40,
            instances=["sparsine", "sat14_itox_vc1130_dual"],
        )
        res = figure4.run(ctx)
        out = res.render()
        assert "Figure 4A" in out and "Figure 4C" in out
        for metric in ("hyperedge_cut", "soed", "pc_cost"):
            for inst in res.instances:
                for algo in res.algorithms:
                    assert res.values[metric][(inst, algo)] >= 0


class TestFigure5:
    def test_runs_and_aggregates(self):
        ctx = ExperimentContext(
            num_nodes=1,
            scale=0.2,
            num_jobs=1,
            iterations=2,
            timesteps=2,
            max_iterations=40,
            instances=["sparsine", "2cubes_sphere"],
        )
        res = figure5.run(ctx)
        assert len(res.records) == 2 * 3 * 1 * 2  # instances x algos x jobs x iters
        out = res.render()
        assert "Figure 5" in out and "speedup" in out
        lo, hi = res.aware_speedup_range()
        assert lo <= hi


class TestFigure6:
    def test_runs_and_alignment_metrics(self, tiny_ctx):
        res = figure6.run(tiny_ctx, instance="sparsine")
        out = res.render(max_size=12)
        assert "Figure 6A" in out and "6D" in out
        assert set(res.affinities) == {
            "multilevel-rb",
            "hyperpraw-basic",
            "hyperpraw-aware",
        }


class TestAblations:
    def test_refinement_factor_sweep(self, tiny_ctx):
        res = ablations.refinement_factor_sweep(
            tiny_ctx, instance="sparsine", factors=(0.95, 1.0)
        )
        assert set(res.values) == {0.95, 1.0}
        assert "ablation" in res.render()
        assert res.best() in (0.95, 1.0)

    def test_presence_threshold_sweep(self, tiny_ctx):
        res = ablations.presence_threshold_sweep(tiny_ctx, instance="sparsine")
        assert set(res.values) == {1, 2}

    def test_profiling_noise_sweep(self, tiny_ctx):
        res = ablations.profiling_noise_sweep(
            tiny_ctx, instance="sparsine", noises=(0.0, 0.4)
        )
        assert res.values[0.0] > 0


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"
        assert args.nodes == 4

    def test_main_table1(self, capsys):
        rc = main(["table1", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figure9"])


class TestCacheDirNormalisation:
    """Regression: relative ``--cache``/``--store``/``--cache-dir`` must be
    pinned to the invocation directory at *parse* time.

    Before the fix, ``store_dir_for`` resolved the cache path at each
    call site, so a ``convert`` in one directory and a later ``stream
    --cache`` (or anything that chdirs between parse and use) silently
    read and wrote different stores.
    """

    def _parse(self, argv):
        return build_parser().parse_args(argv)

    def test_relative_cache_resolves_at_parse_time(self, tmp_path, monkeypatch):
        invocation_dir = tmp_path / "here"
        elsewhere = tmp_path / "elsewhere"
        invocation_dir.mkdir()
        elsewhere.mkdir()

        monkeypatch.chdir(invocation_dir)
        args = self._parse(["stream", "--cache", "my-cache"])
        assert args.cache == str(invocation_dir / "my-cache")

        # A chdir between parse and use (the old bug's trigger) must not
        # move the store: the parsed path is already absolute.
        monkeypatch.chdir(elsewhere)
        from repro.streaming.chunkstore import store_dir_for

        pinned = store_dir_for("g.hgr", args.cache)
        assert str(pinned).startswith(str(invocation_dir / "my-cache"))

    def test_convert_then_stream_share_one_store(
        self, tiny_hypergraph, tmp_path, monkeypatch
    ):
        from repro.hypergraph.io import write_hmetis
        from repro.streaming import stream_hmetis
        from repro.streaming.chunkstore import cached_stream

        workdir = tmp_path / "work"
        otherdir = tmp_path / "other"
        workdir.mkdir()
        otherdir.mkdir()
        hgr = workdir / "tiny.hgr"
        write_hmetis(tiny_hypergraph, hgr)

        monkeypatch.chdir(workdir)
        cache = self._parse(["stream", "--cache", "cache"]).cache
        stream, hit = cached_stream(hgr, cache, opener=stream_hmetis)
        stream.close()
        assert hit is False

        monkeypatch.chdir(otherdir)
        cache2 = self._parse(
            ["stream", "--cache", str(workdir / "cache")]
        ).cache
        stream, hit = cached_stream(hgr, cache2, opener=stream_hmetis)
        stream.close()
        assert hit is True, "same absolute cache dir must replay the store"

    def test_cache_dir_and_store_also_normalised(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = self._parse(["serve", "--cache-dir", "svc-cache"])
        assert args.cache_dir == str(tmp_path / "svc-cache")
        args = self._parse(
            ["convert", "--stream-input", "x.hgr", "--store", "out.chunkstore"]
        )
        assert args.store == str(tmp_path / "out.chunkstore")
