"""Tests for partition quality metrics (paper Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.architecture.cost import uniform_cost_matrix
from repro.core.metrics import (
    connectivity_minus_one,
    edge_partition_counts,
    evaluate_partition,
    hyperedge_cut,
    imbalance,
    partition_loads,
    partitioning_comm_cost,
    soed,
    vertex_neighbour_counts,
)
from repro.hypergraph.model import Hypergraph


@pytest.fixture
def parted(tiny_hypergraph):
    """tiny hypergraph with assignment [0,0,1,1,2,2] over 3 parts.

    Edge spans: {0,1,2}->parts{0,1}; {2,3}->{1}; {3,4,5}->{1,2,2};
    {0,5}->{0,2}.
    """
    return tiny_hypergraph, np.array([0, 0, 1, 1, 2, 2]), 3


class TestEdgePartitionCounts:
    def test_exact_counts(self, parted):
        hg, a, p = parted
        counts = edge_partition_counts(hg, a, p)
        assert counts.tolist() == [
            [2, 1, 0],
            [0, 2, 0],
            [0, 1, 2],
            [1, 0, 1],
        ]

    def test_row_sums_are_cardinalities(self, parted):
        hg, a, p = parted
        counts = edge_partition_counts(hg, a, p)
        assert np.array_equal(counts.sum(axis=1), hg.cardinalities())

    def test_shape_validation(self, tiny_hypergraph):
        with pytest.raises(ValueError):
            edge_partition_counts(tiny_hypergraph, np.zeros(3, dtype=int), 2)
        with pytest.raises(ValueError):
            edge_partition_counts(tiny_hypergraph, np.full(6, 5), 2)


class TestCutMetrics:
    def test_hyperedge_cut(self, parted):
        hg, a, p = parted
        # edges 0, 2, 3 are cut; edge 1 is internal to part 1
        assert hyperedge_cut(hg, a, p) == 3.0

    def test_soed(self, parted):
        hg, a, p = parted
        # lambda = [2, 1, 2, 2]; SOED sums lambda of cut edges = 2+2+2
        assert soed(hg, a, p) == 6.0

    def test_connectivity_minus_one(self, parted):
        hg, a, p = parted
        assert connectivity_minus_one(hg, a, p) == 3.0

    def test_soed_equals_cut_plus_connectivity(self, parted):
        hg, a, p = parted
        assert soed(hg, a, p) == hyperedge_cut(hg, a, p) + connectivity_minus_one(
            hg, a, p
        )

    def test_single_partition_zero_cut(self, tiny_hypergraph):
        a = np.zeros(6, dtype=int)
        assert hyperedge_cut(tiny_hypergraph, a, 1) == 0.0
        assert soed(tiny_hypergraph, a, 1) == 0.0

    def test_weights_respected(self, parted):
        hg, a, p = parted
        weighted = hg.with_weights(edge_weights=[10, 1, 100, 1000])
        assert hyperedge_cut(weighted, a, p) == 1110.0
        assert hyperedge_cut(weighted, a, p, use_edge_weights=False) == 3.0


class TestLoadsAndImbalance:
    def test_loads(self, parted):
        hg, a, p = parted
        assert partition_loads(hg, a, p).tolist() == [2.0, 2.0, 2.0]

    def test_perfect_balance(self, parted):
        hg, a, p = parted
        assert imbalance(hg, a, p) == pytest.approx(1.0)

    def test_worst_imbalance(self, tiny_hypergraph):
        a = np.zeros(6, dtype=int)
        assert imbalance(tiny_hypergraph, a, 3) == pytest.approx(3.0)

    def test_weighted_loads(self, tiny_hypergraph):
        hg = tiny_hypergraph.with_weights(vertex_weights=[1, 1, 1, 1, 1, 7])
        a = np.array([0, 0, 0, 1, 1, 1])
        loads = partition_loads(hg, a, 2)
        assert loads.tolist() == [3.0, 9.0]
        assert imbalance(hg, a, 2) == pytest.approx(1.5)


class TestVertexNeighbourCounts:
    def test_exclude_self(self, parted):
        hg, a, p = parted
        X = vertex_neighbour_counts(hg, a, p, exclude_self=True)
        # vertex 0 (part 0): edge {0,1,2} gives neighbours 1(part0), 2(part1);
        # edge {0,5} gives 5(part2) => X = [1,1,1]
        assert X[0].tolist() == [1.0, 1.0, 1.0]
        # vertex 3 (part 1): edge {2,3} -> 2(part1); edge {3,4,5} -> 4,5(part2)
        assert X[3].tolist() == [0.0, 1.0, 2.0]

    def test_include_self(self, parted):
        hg, a, p = parted
        X = vertex_neighbour_counts(hg, a, p, exclude_self=False)
        assert X[0].tolist() == [3.0, 1.0, 1.0]

    def test_isolated_vertex_is_zero(self):
        hg = Hypergraph(4, [[0, 1]])
        X = vertex_neighbour_counts(hg, np.zeros(4, dtype=int), 2)
        assert X[3].tolist() == [0.0, 0.0]


class TestPCCost:
    def test_uniform_cost_counts_cross_pairs(self, parted):
        """With the uniform matrix, PC equals the number of ordered
        cross-partition neighbour pairs: sum_e (|e|^2 - sum_k n_k^2)."""
        hg, a, p = parted
        counts = edge_partition_counts(hg, a, p)
        cards = hg.cardinalities()
        expected = float((cards**2 - (counts**2).sum(axis=1)).sum())
        got = partitioning_comm_cost(hg, a, p, uniform_cost_matrix(p))
        assert got == pytest.approx(expected)

    def test_single_partition_is_zero(self, tiny_hypergraph):
        a = np.zeros(6, dtype=int)
        assert partitioning_comm_cost(tiny_hypergraph, a, 1, uniform_cost_matrix(1)) == 0.0

    def test_costlier_links_raise_pc(self, parted):
        hg, a, p = parted
        cheap = uniform_cost_matrix(p)
        pricey = cheap * 2.0
        np.fill_diagonal(pricey, 0.0)
        assert partitioning_comm_cost(hg, a, p, pricey) == pytest.approx(
            2 * partitioning_comm_cost(hg, a, p, cheap)
        )

    def test_placement_sensitivity(self, tiny_hypergraph):
        """Moving a cut pair onto a cheap link lowers PC."""
        hg = tiny_hypergraph
        cost = np.array(
            [[0.0, 1.0, 2.0], [1.0, 0.0, 2.0], [2.0, 2.0, 0.0]]
        )
        a_cheap = np.array([0, 0, 1, 1, 1, 0])  # cut pairs mostly 0<->1
        a_dear = np.array([0, 0, 2, 2, 2, 0])  # same shape but 0<->2
        assert partitioning_comm_cost(hg, a_cheap, 3, cost) < partitioning_comm_cost(
            hg, a_dear, 3, cost
        )


class TestEvaluatePartition:
    def test_bundle_consistent(self, parted):
        hg, a, p = parted
        q = evaluate_partition(hg, a, p, uniform_cost_matrix(p), algorithm="x")
        assert q.algorithm == "x"
        assert q.hyperedge_cut == hyperedge_cut(hg, a, p)
        assert q.soed == soed(hg, a, p)
        assert q.imbalance == pytest.approx(1.0)
        assert set(q.as_dict()) >= {"pc_cost", "soed", "hyperedge_cut"}


@st.composite
def partitioned_hypergraphs(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    num_edges = draw(st.integers(min_value=1, max_value=12))
    edges = [
        draw(
            st.lists(
                st.integers(0, n - 1),
                min_size=1,
                max_size=min(6, n),
            )
        )
        for _ in range(num_edges)
    ]
    p = draw(st.integers(min_value=1, max_value=5))
    assignment = draw(
        st.lists(st.integers(0, p - 1), min_size=n, max_size=n)
    )
    return Hypergraph(n, edges), np.asarray(assignment), p


@settings(max_examples=60, deadline=None)
@given(partitioned_hypergraphs())
def test_metric_invariants(case):
    hg, a, p = case
    counts = edge_partition_counts(hg, a, p)
    cut = hyperedge_cut(hg, a, p, counts=counts)
    s = soed(hg, a, p, counts=counts)
    conn = connectivity_minus_one(hg, a, p, counts=counts)
    # invariants: 0 <= cut <= |E|, soed = cut + conn, conn >= cut for
    # unweighted (every cut edge has lambda-1 >= 1), soed >= 2*cut.
    assert 0 <= cut <= hg.num_edges
    assert s == pytest.approx(cut + conn)
    assert conn >= cut - 1e-9
    assert s >= 2 * cut - 1e-9
    # PC with uniform costs equals ordered cross pairs and is non-negative.
    pc = partitioning_comm_cost(hg, a, p, uniform_cost_matrix(p), counts=counts)
    cards = hg.cardinalities()
    assert pc == pytest.approx(float((cards**2 - (counts**2).sum(axis=1)).sum()))
    assert imbalance(hg, a, p) >= 1.0 - 1e-12
