"""In-process faulty-network simulation for the cluster layer.

:class:`FaultyProxy` is a tiny TCP proxy that sits between a
coordinator and one :class:`~repro.cluster.worker.ClusterWorker`,
forwarding bytes through injectable faults:

* ``latency_s`` — added delay before each forwarded chunk (both
  directions), a crude but effective RTT model;
* ``bandwidth_bps`` — throughput cap (sleep ``len/bw`` per chunk);
* ``truncate_after`` — after N forwarded bytes in a direction, hard-
  close both sockets: the classic mid-frame cut;
* ``stall_after`` — after N forwarded bytes in a direction, stop
  forwarding but keep the sockets open: the worst case for a
  coordinator without timeouts (it must *time out*, not hang);
* ``drop_up`` / ``drop_down`` — one-way partition: bytes in that
  direction are read and silently discarded.

Per-direction byte counters (``bytes_up`` = coordinator→worker,
``bytes_down`` = worker→coordinator) are the *ground truth* the
``cluster_wire_bytes`` meter is audited against — the proxy counts what
actually crossed the socket, independent of the coordinator's own
accounting.

Faults and counters are applied per proxied connection (a reconnect
through the same proxy sees the same fault fresh), and cumulative
totals are kept across connections for the audit.  Used by
``tests/test_cluster_faults.py`` and by
``scripts/run_experiments.py --netem``; stdlib + threads only, no
external dependencies, everything loopback.
"""

from __future__ import annotations

import socket
import threading
import time

__all__ = ["FaultyProxy", "NETEM_PROFILES", "netem_profile"]

#: named degradation profiles for the experiment harness (--netem)
NETEM_PROFILES = {
    "clean": {},
    "slow": {"bandwidth_bps": 4 << 20},
    "latency": {"latency_s": 0.02},
    "flaky": {"latency_s": 0.005, "bandwidth_bps": 16 << 20},
}


def netem_profile(name: str) -> dict:
    """Resolve a named ``--netem`` profile to :class:`FaultyProxy` knobs."""
    try:
        return dict(NETEM_PROFILES[name])
    except KeyError:
        raise ValueError(
            f"unknown netem profile {name!r}; "
            f"choose from {sorted(NETEM_PROFILES)}"
        )


class _Pump(threading.Thread):
    """Forward one direction of one proxied connection through faults."""

    #: shaping granularity — small enough that bandwidth caps and
    #: latency are smooth, large enough to stay cheap
    CHUNK = 16384

    def __init__(
        self,
        src: socket.socket,
        dst: socket.socket,
        proxy: "FaultyProxy",
        direction: str,
        counters: dict,
    ) -> None:
        super().__init__(daemon=True, name=f"netsim-{direction}")
        self.src, self.dst = src, dst
        self.proxy = proxy
        self.direction = direction
        self.counters = counters

    def run(self) -> None:
        p = self.proxy
        drop = p.drop_up if self.direction == "up" else p.drop_down
        cut = (
            p.truncate_after
            if p.truncate_direction in (self.direction, "both")
            else None
        )
        stall = (
            p.stall_after
            if p.stall_direction in (self.direction, "both")
            else None
        )
        try:
            while not p._closed.is_set():
                try:
                    data = self.src.recv(self.CHUNK)
                except OSError:
                    break
                if not data:
                    break
                seen = self.counters[self.direction] + len(data)
                if cut is not None and seen > cut:
                    # forward the prefix up to the cut, then sever —
                    # the receiver sees a mid-frame EOF
                    keep = max(0, cut - self.counters[self.direction])
                    if keep and not drop:
                        try:
                            self.dst.sendall(data[:keep])
                        except OSError:
                            pass
                    self.counters[self.direction] += keep
                    p._bump(self.direction, keep)
                    p._sever()
                    break
                if p.latency_s:
                    time.sleep(p.latency_s)
                if p.bandwidth_bps:
                    time.sleep(len(data) / p.bandwidth_bps)
                self.counters[self.direction] = seen
                p._bump(self.direction, len(data))
                if not drop:
                    try:
                        self.dst.sendall(data)
                    except OSError:
                        break
                if stall is not None and seen >= stall:
                    # stop forwarding, keep the sockets open: the peer
                    # must hit its own timeout, never a clean EOF
                    p._closed.wait()
                    break
        finally:
            if not p.hold_open:
                for sock in (self.src, self.dst):
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass


class FaultyProxy:
    """Loopback TCP proxy with injectable network faults.

    Parameters
    ----------
    target:
        ``(host, port)`` of the real worker.
    latency_s, bandwidth_bps, truncate_after, stall_after,
    drop_up, drop_down:
        the fault knobs (see module docstring).  ``truncate_direction``
        / ``stall_direction`` pick which flow the byte threshold
        watches (``"up"``, ``"down"`` or ``"both"``).
    """

    def __init__(
        self,
        target: "tuple[str, int]",
        *,
        latency_s: float = 0.0,
        bandwidth_bps: "int | None" = None,
        truncate_after: "int | None" = None,
        truncate_direction: str = "down",
        stall_after: "int | None" = None,
        stall_direction: str = "down",
        drop_up: bool = False,
        drop_down: bool = False,
    ) -> None:
        self.target = (str(target[0]), int(target[1]))
        self.latency_s = float(latency_s)
        self.bandwidth_bps = bandwidth_bps
        self.truncate_after = truncate_after
        self.truncate_direction = truncate_direction
        self.stall_after = stall_after
        self.stall_direction = stall_direction
        self.drop_up = bool(drop_up)
        self.drop_down = bool(drop_down)
        #: cumulative ground-truth forwarded bytes, across connections
        self.bytes_up = 0
        self.bytes_down = 0
        self.connections = 0
        self.hold_open = False  # set while a stall is in force
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._pairs: "list[tuple[socket.socket, socket.socket]]" = []
        self._threads: "list[threading.Thread]" = []
        srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        srv.bind(("127.0.0.1", 0))
        srv.listen(8)
        srv.settimeout(0.2)
        self._server = srv
        self.port = srv.getsockname()[1]
        self.hold_open = stall_after is not None
        accept = threading.Thread(
            target=self._accept_loop, daemon=True, name="netsim-accept"
        )
        accept.start()
        self._threads.append(accept)

    # ------------------------------------------------------------------
    def _bump(self, direction: str, n: int) -> None:
        with self._lock:
            if direction == "up":
                self.bytes_up += n
            else:
                self.bytes_down += n

    def _sever(self) -> None:
        """Hard-close every proxied socket (mid-frame truncation)."""
        with self._lock:
            pairs, self._pairs = self._pairs, []
        for a, b in pairs:
            for sock in (a, b):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                client, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                upstream = socket.create_connection(self.target, timeout=5.0)
            except OSError:
                client.close()
                continue
            with self._lock:
                self.connections += 1
                self._pairs.append((client, upstream))
            counters = {"up": 0, "down": 0}  # per-connection fault state
            for pump in (
                _Pump(client, upstream, self, "up", counters),
                _Pump(upstream, client, self, "down", counters),
            ):
                pump.start()
                self._threads.append(pump)

    @property
    def bytes_total(self) -> int:
        with self._lock:
            return self.bytes_up + self.bytes_down

    def close(self) -> None:
        self._closed.set()
        self.hold_open = False
        try:
            self._server.close()
        except OSError:
            pass
        self._sever()
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "FaultyProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
