"""Property/invariant suite pinning the partitioner registry.

Randomised hypergraphs (three generator families, seeded) x **every
family registered in** :data:`repro.partitioning.families.PARTITIONERS`
(plus the non-registry baselines HyperPRAW and Fennel, and the FM-polished
wrapper) x worker counts {1, 2, 4}, asserting the invariants every
refactor of the engine or parallel layer must preserve:

(a) every vertex lands in a valid part;
(b) the partitioner's balance guarantee holds (hard cap for the
    single-pass streamers, schedule tolerance for the restreamers);
(c) same seed => identical assignment (full determinism, forked or
    sequential);
(d) sharded merges with boundary-only payloads equal merges with
    full-table payloads, assignment for assignment — shipping less must
    never change the result.

The matrix is *introspected* from the registry, not hand-listed: a newly
registered family is exercised automatically, and
``TestRegistryCompleteness`` fails if a registered name somehow dodges
the matrix or the service/OpenAPI surface drifts from the registry.

Plus the golden-hash regression extension: sharded-v2 ``workers=1``
stays assignment-identical to the unsharded partitioner for both the
Eq. 1 and FENNEL scorers, via text *and* chunk-store sources.

All temp artifacts live under per-test ``tmp_path`` fixtures — no
shared module-level store paths — so the suite stays ``pytest -n auto``
safe.
"""

import hashlib
import warnings

import numpy as np
import pytest

from repro.core import HyperPRAW, HyperPRAWConfig
from repro.engine import shard_ranges, shard_ranges_by_pins
from repro.hypergraph.generators import (
    mesh_matrix_hypergraph,
    powerlaw_hypergraph,
    random_uniform_hypergraph,
)
from repro.hypergraph.io import write_hmetis
from repro.partitioning.families import (
    PARTITIONERS as FAMILY_REGISTRY,
    PolishedStreamer,
    RefineConfig,
    family_names,
)
from repro.partitioning.fennel import FennelStreaming
from repro.streaming import (
    BufferedRestreamer,
    OnePassStreamer,
    ShardedStreamer,
    open_store,
    stream_hmetis,
)

P = 4
WORKER_COUNTS = (1, 2, 4)


def _digest(assignment: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(assignment, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


def _instance(family: str):
    """Seeded random instances — one per structural family."""
    if family == "uniform":
        return random_uniform_hypergraph(240, 300, 4.0, seed=1, name="inv-uniform")
    if family == "powerlaw":
        return powerlaw_hypergraph(300, 360, 3.2, seed=2, name="inv-powerlaw")
    return mesh_matrix_hypergraph(320, 6.0, seed=3, name="inv-mesh")


FAMILIES = ("uniform", "powerlaw", "mesh")


@pytest.fixture(scope="module", params=FAMILIES)
def instance(request):
    return _instance(request.param)


def _cfg():
    return HyperPRAWConfig(record_history=False, max_iterations=40)


def _partitioners(hg):
    """name -> (factory, hard_imbalance_bound): the whole registry at
    every worker count, plus the non-registry baselines.

    Each :class:`~repro.partitioning.families.FamilySpec` carries its own
    default-configuration factory (``make``) and hard imbalance bound
    (``bound``), so registering a new family automatically enrolls it
    here — ``TestRegistryCompleteness`` pins that property.
    """
    entries = {
        "hyperpraw": (lambda: HyperPRAW(_cfg()), 1.1),
        "fennel": (lambda: FennelStreaming(), 1.2),
    }
    for name, spec in FAMILY_REGISTRY.items():
        for w in WORKER_COUNTS:
            entries[f"{name}-w{w}"] = (
                lambda spec=spec, w=w: spec.make(hg, w),
                spec.bound(w),
            )
    # The FM polish is attachable to any family; pin it on the onepass
    # base at every refine worker count.  The polish may not worsen the
    # base's balance guarantee (moves are cap-checked live).
    onepass = FAMILY_REGISTRY["onepass"]
    for w in WORKER_COUNTS:
        entries[f"onepass+fm-w{w}"] = (
            lambda w=w: PolishedStreamer(
                onepass.make(hg, 1), refine=RefineConfig(workers=w)
            ),
            onepass.bound(1),
        )
    return entries


class TestCoreInvariants:
    """(a) valid parts, (b) balance, (c) seed determinism — every family."""

    def test_valid_parts_balance_and_determinism(self, instance):
        for name, (make, imb_bound) in _partitioners(instance).items():
            first = make().partition(instance, P, seed=7)
            again = make().partition(instance, P, seed=7)
            # (a) every vertex assigned to a valid part
            assert (first.assignment >= 0).all(), name
            assert (first.assignment < P).all(), name
            assert first.assignment.size == instance.num_vertices, name
            # (b) the balance guarantee holds
            loads = np.bincount(first.assignment, minlength=P).astype(float)
            imbalance = loads.max() / loads.mean()
            assert imbalance <= imb_bound + 1e-9, (name, imbalance)
            # (c) same seed => identical assignment
            assert np.array_equal(first.assignment, again.assignment), name

    def test_different_worker_counts_all_valid(self, instance):
        """The shard structure changes results, never their validity —
        and every worker count stays internally deterministic."""
        for w in WORKER_COUNTS:
            runs = [
                OnePassStreamer(chunk_size=32, workers=w).partition(
                    instance, P, seed=5
                )
                for _ in range(2)
            ]
            assert (runs[0].assignment >= 0).all()
            if w > 1:  # w=1 runs the plain unsharded streamer
                assert runs[0].metadata["workers"] == w
            assert _digest(runs[0].assignment) == _digest(runs[1].assignment)

    def test_forked_equals_sequential_every_family(self, monkeypatch):
        """Worker fan-out may never change the answer: for every
        registered family, workers=2 with fork available is bit-identical
        to the same run with fork forced off (sequential fallback)."""
        import repro.engine.parallel as parallel

        hg = _instance("uniform")
        for name, spec in FAMILY_REGISTRY.items():
            forked = spec.make(hg, 2).partition(hg, P, seed=7)
            with monkeypatch.context() as m:
                m.setattr(parallel, "fork_available", lambda: False)
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    sequential = spec.make(hg, 2).partition(hg, P, seed=7)
            assert sequential.metadata.get("parallel_mode", "sequential") == (
                "sequential"
            ), name
            assert np.array_equal(forked.assignment, sequential.assignment), name


class TestRegistryCompleteness:
    """A registered family cannot dodge the invariants, and the service
    surface cannot drift from the registry."""

    def test_every_registered_family_in_matrix(self):
        hg = _instance("uniform")
        matrix = set(_partitioners(hg))
        missing = [
            name
            for name in family_names()
            if not all(f"{name}-w{w}" in matrix for w in WORKER_COUNTS)
        ]
        assert not missing, (
            f"registered families missing from the invariant matrix: "
            f"{missing} — _partitioners() must enroll every "
            f"PARTITIONERS entry at all of {WORKER_COUNTS}"
        )

    def test_registry_specs_are_complete(self):
        for name, spec in FAMILY_REGISTRY.items():
            assert spec.name == name
            assert spec.summary
            assert callable(spec.build) and callable(spec.make)
            assert 1.0 < spec.bound(1) <= spec.bound(2) + 1e-12, name

    def test_service_tracks_registry(self):
        from repro.service.handlers import PARTITIONERS as SERVICE_NAMES
        from repro.service.openapi import openapi_spec

        assert tuple(SERVICE_NAMES) == family_names()
        params = openapi_spec()["paths"]["/v1/partitions"]["post"]["parameters"]
        enum = next(
            p for p in params if p["name"] == "partitioner"
        )["schema"]["enum"]
        assert tuple(enum) == family_names()


class TestPayloadEquivalence:
    """(d) boundary-only payloads == full-table payloads, bit for bit."""

    @pytest.mark.parametrize("workers", (2, 4))
    def test_boundary_equals_full(self, instance, workers):
        buffer = max(1, instance.num_vertices // 4)

        def run(payload):
            return ShardedStreamer(
                BufferedRestreamer(_cfg(), buffer_size=buffer),
                workers=workers,
                chunk_size=32,
                payload=payload,
            ).partition(instance, P, seed=11)

        boundary = run("boundary")
        full = run("full")
        assert np.array_equal(boundary.assignment, full.assignment)
        # shipping less must mean *less*: boundary payload never exceeds
        # what full-table shipping moves on the same run
        assert (
            boundary.metadata["merge_payload_bytes"]
            <= full.metadata["merge_payload_bytes"]
        )
        assert (
            full.metadata["merge_payload_bytes"]
            == full.metadata["merge_full_payload_bytes"]
        )
        assert boundary.metadata["payload"] == "boundary"

    def test_onepass_base_boundary_equals_full(self, instance):
        runs = [
            OnePassStreamer(
                chunk_size=32, workers=2, shard_payload=payload
            ).partition(instance, P, seed=3)
            for payload in ("boundary", "full")
        ]
        assert np.array_equal(runs[0].assignment, runs[1].assignment)

    @pytest.mark.parametrize("workers", (2, 4))
    def test_boundary_equals_full_with_capped_table(self, instance, workers):
        """Eviction regression: a capped LRU table can evict overlaid
        boundary rows mid-round; deltas must come from the actual moves
        (not table rows) or the driver's merged counts corrupt.  Both
        payload modes must stay identical — and deterministic — under
        eviction pressure."""
        def run(payload):
            return ShardedStreamer(
                BufferedRestreamer(
                    _cfg(), buffer_size=64, max_tracked_edges=32
                ),
                workers=workers,
                chunk_size=32,
                payload=payload,
            ).partition(instance, P, seed=11)

        boundary, full = run("boundary"), run("full")
        assert np.array_equal(boundary.assignment, full.assignment)
        assert np.array_equal(boundary.assignment, run("boundary").assignment)
        assert (boundary.assignment >= 0).all()
        assert boundary.metadata["monitored_pc_cost"] >= 0.0
        assert boundary.metadata["evictions"] > 0  # the pressure is real

    def test_forked_equals_sequential_fallback(self, instance, monkeypatch):
        """The fork-less fallback drives the same barrier rounds in shard
        order, so it must be bit-identical to the forked run — and it
        must *announce* itself: a structured RuntimeWarning when
        parallelism was requested but fork is unavailable, plus the
        effective mode in run metadata, so benches can never misreport
        sequential numbers as parallel ones."""
        import repro.engine.parallel as parallel

        def run():
            return ShardedStreamer(
                BufferedRestreamer(_cfg(), buffer_size=64),
                workers=2,
                chunk_size=32,
            ).partition(instance, P, seed=9)

        forked = run()
        assert forked.metadata["parallel_mode"] == (
            "forked" if parallel.fork_available() else "sequential"
        )
        monkeypatch.setattr(parallel, "fork_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="fork.*unavailable"):
            sequential = run()
        assert sequential.metadata["parallel_mode"] == "sequential"
        assert np.array_equal(forked.assignment, sequential.assignment)
        assert (
            forked.metadata["boundary_iterations"]
            == sequential.metadata["boundary_iterations"]
        )


class TestShardedV2Goldens:
    """workers=1 == the unsharded partitioner, for both scorers, via
    text and chunk-store sources (golden-hash regression extension)."""

    def _sources(self, instance, tmp_path, chunk_size=48):
        path = tmp_path / "inv.hgr"
        write_hmetis(instance, path, write_weights=True)
        with stream_hmetis(path, chunk_size=chunk_size) as stream:
            store = stream.save(tmp_path / "inv.chunkstore")
        return path, store

    @pytest.mark.parametrize("scorer", ("eq1", "fennel"))
    def test_onepass_workers1_equality(self, instance, tmp_path, scorer):
        path, store = self._sources(instance, tmp_path)
        make = lambda: OnePassStreamer(scorer=scorer)
        with stream_hmetis(path, chunk_size=48) as text:
            ref = make().partition_stream(text, P)
        for source in (
            stream_hmetis(path, chunk_size=48),
            open_store(store),
        ):
            with source:
                sharded = ShardedStreamer(make(), workers=1).partition_stream(
                    source, P
                )
            assert _digest(sharded.assignment) == _digest(ref.assignment)
            assert sharded.metadata["boundary_edges"] == 0

    def test_buffered_workers1_equality(self, instance, tmp_path):
        path, store = self._sources(instance, tmp_path)
        make = lambda: BufferedRestreamer(_cfg(), buffer_size=64)
        with stream_hmetis(path, chunk_size=48) as text:
            ref = make().partition_stream(text, P)
        for source in (
            stream_hmetis(path, chunk_size=48),
            open_store(store),
        ):
            with source:
                sharded = ShardedStreamer(make(), workers=1).partition_stream(
                    source, P
                )
            assert _digest(sharded.assignment) == _digest(ref.assignment)

    def test_fennel_scorer_differs_from_eq1(self, instance):
        """The scorer knob is live: the two value functions disagree."""
        a = OnePassStreamer(scorer="eq1").partition(instance, P)
        b = OnePassStreamer(scorer="fennel", alpha="fennel").partition(
            instance, P
        )
        assert not np.array_equal(a.assignment, b.assignment)

    def test_boundary_restream_matches_base_scorer(self):
        """A FENNEL-scored base is polished under the FENNEL objective,
        not silently contaminated with Eq. 1 (and vice versa)."""
        from repro.architecture.cost import uniform_cost_matrix
        from repro.engine import FennelScorer, HyperPRAWScorer
        from repro.streaming.sharded import _boundary_scorer

        C, expected = uniform_cost_matrix(P), np.ones(P)
        fennel_profile = OnePassStreamer(
            scorer="fennel", gamma=1.7
        )._shard_profile()
        scorer = _boundary_scorer(C, 2.0, expected, fennel_profile)
        assert isinstance(scorer, FennelScorer)
        assert scorer.gamma == 1.7 and scorer.alpha == 2.0
        for profile in (
            OnePassStreamer()._shard_profile(),
            BufferedRestreamer(_cfg())._shard_profile(),
        ):
            assert isinstance(
                _boundary_scorer(C, 2.0, expected, profile), HyperPRAWScorer
            )


class TestShardRangeEdgeCases:
    """The shard_ranges fixes: pin balancing, clamping, validation."""

    def test_pin_ranges_cover_and_balance(self):
        pins = np.array([100, 100, 100, 100, 5, 5, 5, 5], dtype=np.int64)
        ranges = shard_ranges_by_pins(pins, 2)
        assert ranges[0][0] == 0 and ranges[-1][1] == pins.size
        assert [lo for lo, _ in ranges[1:]] == [hi for _, hi in ranges[:-1]]
        # chunk-count splitting would give (400, 20); the pin cut lands
        # at the boundary nearest the fair share: exactly (200, 220)
        assert ranges == [(0, 2), (2, 8)]
        shard_pins = [int(pins[lo:hi].sum()) for lo, hi in ranges]
        assert max(shard_pins) / (sum(shard_pins) / len(shard_pins)) < 1.1

    def test_pin_ranges_clamp_workers(self):
        assert shard_ranges_by_pins(np.array([3, 3]), 8) == [(0, 1), (1, 2)]
        assert shard_ranges_by_pins(np.array([], dtype=np.int64), 4) == []
        # all-zero pins fall back to the chunk-count split
        assert shard_ranges_by_pins(np.zeros(4, dtype=np.int64), 2) == (
            shard_ranges(4, 2)
        )
        with pytest.raises(ValueError, match="workers"):
            shard_ranges_by_pins(np.array([1]), 0)

    def test_every_shard_nonempty_under_skew(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n = int(rng.integers(1, 20))
            w = int(rng.integers(1, 8))
            pins = rng.integers(0, 1000, n)
            ranges = shard_ranges_by_pins(pins, w)
            assert len(ranges) == min(w, n)
            assert all(hi > lo for lo, hi in ranges)
            assert ranges[0][0] == 0 and ranges[-1][1] == n
            assert [lo for lo, _ in ranges[1:]] == [
                hi for _, hi in ranges[:-1]
            ]

    def test_streamer_warns_and_clamps_excess_workers(self, instance):
        sharded = ShardedStreamer(
            OnePassStreamer(), workers=64, chunk_size=1024
        )
        with pytest.warns(RuntimeWarning, match="clamping"):
            r = sharded.partition(instance, P)
        assert r.metadata["shards"] <= r.metadata["workers"]
        assert (r.assignment >= 0).all()

    def test_no_warning_when_workers_fit(self, instance):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ShardedStreamer(
                OnePassStreamer(), workers=2, chunk_size=32
            ).partition(instance, P)

    def test_cli_rejects_nonpositive_workers(self, capsys):
        from repro.experiments.cli import main

        for bad in ("0", "-3", "zero"):
            with pytest.raises(SystemExit) as exc:
                main(["stream", "--workers", bad])
            assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--workers" in err


class TestPinMetadata:
    """The plumbing the v2 sharding runs on: degrees and chunk pins."""

    def test_state_rows_overlay_roundtrip(self):
        """set_rows overwrites, rows reads back, untracked rows are zero."""
        from repro.streaming import StreamingState

        state = StreamingState(3, expected_loads=np.ones(3))
        edges = np.array([4, 9], dtype=np.int64)
        counts = np.array([[1, 2, 0], [0, 0, 5]], dtype=np.int64)
        state.set_rows(edges, counts)
        assert np.array_equal(state.rows(edges), counts)
        # overwrite, not accumulate
        state.set_rows(edges, counts)
        assert np.array_equal(state.rows(edges), counts)
        assert np.array_equal(
            state.rows(np.array([7], dtype=np.int64)), np.zeros((1, 3))
        )
        # an evicted row reads back as zeros (lower-bound semantics)
        capped = StreamingState(
            2, expected_loads=np.ones(2), max_tracked_edges=1
        )
        capped.set_rows(np.array([0]), np.array([[3, 1]]))
        capped.set_rows(np.array([1]), np.array([[2, 2]]))  # evicts 0
        assert np.array_equal(capped.rows(np.array([0, 1])), [[0, 0], [2, 2]])

    def test_edge_degrees_match_model(self, instance, tmp_path):
        path = tmp_path / "deg.hgr"
        write_hmetis(instance, path, write_weights=True)
        want = np.diff(instance.edge_ptr)
        with stream_hmetis(path, chunk_size=32) as stream:
            assert np.array_equal(stream.edge_degrees, want)
            store = stream.save(tmp_path / "deg.chunkstore")
        replay = open_store(store)
        assert np.array_equal(np.asarray(replay.edge_degrees), want)
        # the counting fallback agrees with the recorded metadata
        replay.edge_degrees = None
        assert np.array_equal(replay.compute_edge_degrees(), want)

    def test_chunk_pins_sum_to_total(self, instance, tmp_path):
        path = tmp_path / "pins.hgr"
        write_hmetis(instance, path, write_weights=True)
        with stream_hmetis(path, chunk_size=32) as stream:
            pins = stream.chunk_pins()
            assert pins is not None and len(pins) == stream.num_chunks
            assert int(pins.sum()) == stream.num_pins
            want = [c.num_pins for c in stream]
            assert pins.tolist() == want
            store = stream.save(tmp_path / "pins.chunkstore")
        replay = open_store(store)
        assert replay.chunk_pins().tolist() == want
