"""Fault-matrix tests: the cluster layer on a hostile network.

Every scenario routes one worker's traffic through the
:class:`tests.netsim.FaultyProxy` and asserts the documented
reconnect-then-degrade contract end to end:

* the run **terminates** well inside its watchdog bound (no-hang);
* the final assignment is **bit-identical** to the undisturbed
  forked-sharding golden (degrade-to-local replay is exact by
  construction);
* the loss is visible in metadata (``degraded_shards``).

A clean (fault-free) proxied run doubles as the wire-meter audit:
``cluster_wire_bytes`` must equal the bytes the proxy actually saw
cross the socket, in both directions — the ground truth that catches
any under-counting in the coordinator's own accounting.
"""

import threading

import numpy as np
import pytest

from repro.cluster import ClusterWorker, DistributedStreamer
from repro.hypergraph.generators import powerlaw_hypergraph
from repro.streaming import (
    HypergraphChunkStream,
    OnePassStreamer,
    ShardedStreamer,
)

from netsim import FaultyProxy

#: per-run watchdog — generous; the point is "bounded", not "fast"
RUN_BOUND = 90.0
N_WORKERS = 2
PARTS = 4
SEED = 7
CHUNK = 32


def _hg():
    return powerlaw_hypergraph(320, 240, 4.0, seed=3, name="faults")


def _stream():
    return HypergraphChunkStream(_hg(), CHUNK)


@pytest.fixture(scope="module")
def fleet():
    workers = [
        ClusterWorker("127.0.0.1", 0, seed=100 + i) for i in range(N_WORKERS)
    ]
    threads = [w.start_in_thread() for w in workers]
    yield workers
    for w in workers:
        w.stop()
    for t in threads:
        t.join(timeout=10.0)
        assert not t.is_alive()


@pytest.fixture(scope="module")
def golden():
    return ShardedStreamer(
        OnePassStreamer(), workers=N_WORKERS, chunk_size=CHUNK
    ).partition_stream(_stream(), PARTS, seed=SEED)


def _bounded(fn, bound=RUN_BOUND):
    """Run ``fn`` under a watchdog; a hang fails instead of wedging CI."""
    done = {}

    def target():
        try:
            done["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - reraised below
            done["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(bound)
    assert not thread.is_alive(), f"cluster run exceeded its {bound}s bound"
    if "error" in done:
        raise done["error"]
    return done["value"]


def _run_against(hosts, *, timeout, **kwargs):
    streamer = DistributedStreamer(
        OnePassStreamer(),
        hosts=hosts,
        timeout=timeout,
        chunk_size=CHUNK,
        **kwargs,
    )
    return streamer.partition_stream(_stream(), PARTS, seed=SEED)


class TestWireMeterGroundTruth:
    def test_meter_matches_proxy_byte_count(self, fleet, golden):
        """Clean proxies on *both* links: the coordinator's
        cluster_wire_bytes must equal the proxies' forwarded totals
        exactly — every hello, chunk, round frame and reply, both
        directions."""
        with FaultyProxy(("127.0.0.1", fleet[0].port)) as p0, FaultyProxy(
            ("127.0.0.1", fleet[1].port)
        ) as p1:
            result = _bounded(
                lambda: _run_against(
                    [("127.0.0.1", p0.port), ("127.0.0.1", p1.port)],
                    timeout=10.0,
                )
            )
            np.testing.assert_array_equal(
                result.assignment, golden.assignment
            )
            assert result.metadata["degraded_shards"] == []
            meter = result.metadata["cluster_wire_bytes"]
            truth = p0.bytes_total + p1.bytes_total
        assert meter == truth, (
            f"cluster_wire_bytes={meter} but the proxies saw {truth} "
            "bytes cross the wire"
        )

    def test_meter_counts_orphaned_attach_bytes(self, fleet, golden):
        """A handshake that dies mid-ship must still be accounted: the
        truncated attach's bytes show up in the meter (the PR 6 code
        dropped them on the floor)."""
        with FaultyProxy(
            ("127.0.0.1", fleet[0].port),
            truncate_after=512,
            truncate_direction="up",
        ) as p0:
            result = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", p0.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=5.0,
                )
            )
            np.testing.assert_array_equal(
                result.assignment, golden.assignment
            )
            assert result.metadata["degraded_shards"] == [0]
            # both the original attach and the one reconnect attempt
            # put bytes on the wire before dying; the meter must see
            # them even though no link ever came back
            assert result.metadata["cluster_wire_bytes"] > 0


class TestFaultMatrix:
    """Slow link, latency, mid-run stall, one-way partition."""

    def _assert_degraded_identical(self, result, golden):
        np.testing.assert_array_equal(result.assignment, golden.assignment)
        assert result.metadata["degraded_shards"] == [0]
        assert result.metadata["parallel_mode"] == "distributed"

    def test_slow_link_degrades(self, fleet, golden):
        """Bandwidth-capped link: shipping the shard outruns the
        straggler timeout, the shard runs locally, result unchanged."""
        with FaultyProxy(
            ("127.0.0.1", fleet[0].port), bandwidth_bps=2_000
        ) as p0:
            result = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", p0.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=0.75,
                )
            )
        self._assert_degraded_identical(result, golden)

    def test_high_latency_degrades(self, fleet, golden):
        """500 ms injected latency against a tighter straggler bound:
        the handshake times out, reconnect times out, shard 0 runs
        locally — bounded and exact."""
        with FaultyProxy(
            ("127.0.0.1", fleet[0].port), latency_s=0.5
        ) as p0:
            result = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", p0.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=0.45,
                )
            )
        self._assert_degraded_identical(result, golden)

    def test_midrun_stall_degrades(self, fleet, golden):
        """The nasty one: the link goes silent *mid-session* with the
        sockets held open.  A coordinator without timeouts would hang
        forever; ours must time out, fail the one reconnect (the worker
        is still wedged in the stalled session) and replay locally."""
        # Calibrate the stall point from a clean proxied run so the
        # cut lands well into the session (past the handshake).
        with FaultyProxy(("127.0.0.1", fleet[0].port)) as probe:
            clean = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", probe.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=10.0,
                )
            )
            np.testing.assert_array_equal(
                clean.assignment, golden.assignment
            )
            stall_at = int(probe.bytes_down * 0.8)
        assert stall_at > 0
        with FaultyProxy(
            ("127.0.0.1", fleet[0].port),
            stall_after=stall_at,
            stall_direction="down",
        ) as p0:
            result = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", p0.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=1.0,
                )
            )
        self._assert_degraded_identical(result, golden)

    def test_oneway_partition_degrades(self, fleet, golden):
        """One-way partition: coordinator→worker flows, every reply is
        silently dropped.  No EOF ever arrives, so only the timeout
        rail can save the run."""
        with FaultyProxy(
            ("127.0.0.1", fleet[0].port), drop_down=True
        ) as p0:
            result = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", p0.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=0.75,
                )
            )
        self._assert_degraded_identical(result, golden)

    def test_midframe_truncation_degrades(self, fleet, golden):
        """Hard mid-frame cut on the reply path: surfaces instantly as
        TruncatedFrameError (no timeout wait), then the documented
        reconnect-or-local path."""
        with FaultyProxy(
            ("127.0.0.1", fleet[0].port),
            truncate_after=4096,
            truncate_direction="down",
        ) as p0:
            result = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", p0.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=5.0,
                )
            )
        self._assert_degraded_identical(result, golden)

    def test_degraded_run_same_result_with_legacy_knobs(
        self, fleet, golden
    ):
        """The degrade path is knob-independent: uncompressed v1-style
        broadcast rounds through a truncating proxy land on the same
        assignment."""
        with FaultyProxy(
            ("127.0.0.1", fleet[0].port),
            truncate_after=4096,
            truncate_direction="down",
        ) as p0:
            result = _bounded(
                lambda: _run_against(
                    [
                        ("127.0.0.1", p0.port),
                        ("127.0.0.1", fleet[1].port),
                    ],
                    timeout=5.0,
                    compress=False,
                    tailored=False,
                )
            )
        self._assert_degraded_identical(result, golden)
