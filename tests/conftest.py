"""Shared fixtures for the test suite.

Conventions
-----------
* ``tiny_*`` fixtures are hand-checkable objects (a 6-vertex hypergraph,
  a 4-rank machine) used by unit tests that assert exact values.
* ``small_*`` fixtures are generated instances at reduced scale, used by
  behavioural/integration tests.
* Every stochastic fixture is seeded; the suite is fully deterministic.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np
import pytest

from repro.architecture.bandwidth import archer_like_bandwidth
from repro.architecture.cost import cost_matrix_from_bandwidth
from repro.architecture.topology import archer_like_topology, flat_topology
from repro.hypergraph.model import Hypergraph
from repro.hypergraph.suite import load_instance
from repro.simcomm.network import LinkModel


def wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    """Poll ``predicate`` until truthy, with a hard deadline.

    Returns the predicate's (truthy) value.  Raises ``AssertionError``
    after ``timeout`` seconds — a hung service fails the test in
    seconds, never by running into the CI job timeout.  Concurrency
    tests must use this instead of bare ``time.sleep`` loops.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"timed out after {timeout}s waiting for {message}"
            )
        time.sleep(interval)


@pytest.fixture
def wait_for():
    """The bounded :func:`wait_until` poller, as a fixture."""
    return wait_until


@pytest.fixture(autouse=True)
def _private_tempdir(tmp_path, monkeypatch):
    """Route ``tempfile`` allocations into the per-test ``tmp_path``.

    Spill stores (``repro-stream-*``) and bench scratch directories are
    created through ``tempfile``; pinning its base to the test's own
    directory means no test ever shares mutable ``/tmp`` state with
    another, keeping the suite safe for ``pytest -n auto``.
    """
    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))


@pytest.fixture
def tiny_hypergraph() -> Hypergraph:
    """6 vertices, 4 hyperedges — small enough to verify by hand.

    Edges: {0,1,2}, {2,3}, {3,4,5}, {0,5}.
    """
    return Hypergraph(6, [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5]], name="tiny")


@pytest.fixture
def two_cluster_hypergraph() -> Hypergraph:
    """Two dense 5-vertex clusters joined by a single bridge hyperedge.

    A structured instance with an obvious optimal bisection; used to
    check that partitioners actually find structure.
    """
    cluster_a = [[0, 1, 2], [1, 2, 3], [2, 3, 4], [0, 3, 4], [0, 1, 4]]
    cluster_b = [[5, 6, 7], [6, 7, 8], [7, 8, 9], [5, 8, 9], [5, 6, 9]]
    bridge = [[4, 5]]
    return Hypergraph(10, cluster_a + cluster_b + bridge, name="two-cluster")


@pytest.fixture
def small_mesh() -> Hypergraph:
    """A small 3-D mesh-matrix instance (strong locality)."""
    return load_instance("2cubes_sphere", scale=0.15)


@pytest.fixture
def small_random() -> Hypergraph:
    """A small unstructured instance (sparsine stand-in)."""
    return load_instance("sparsine", scale=0.15)


@pytest.fixture
def tiny_machine() -> LinkModel:
    """4 ranks: ranks (0,1) fast pair, (2,3) fast pair, cross pairs slow."""
    bw = np.array(
        [
            [1000.0, 1000.0, 100.0, 100.0],
            [1000.0, 1000.0, 100.0, 100.0],
            [100.0, 100.0, 1000.0, 1000.0],
            [100.0, 100.0, 1000.0, 1000.0],
        ]
    )
    lat = np.full((4, 4), 1e-6)
    np.fill_diagonal(lat, 0.0)
    return LinkModel(bw, lat)


@pytest.fixture
def archer_machine_24():
    """One ARCHER-like node (24 cores) with its cost matrix."""
    topo = archer_like_topology(num_nodes=1)
    bw, lat = archer_like_bandwidth(topo).matrices(seed=42)
    link = LinkModel(bw, lat)
    return topo, link, cost_matrix_from_bandwidth(bw)


@pytest.fixture
def flat_machine_8():
    """Perfectly homogeneous 8-rank machine (aware == basic control).

    Noise is disabled: with identical link bandwidths the normalised cost
    matrix is exactly uniform, so the aware variant must reduce to basic.
    """
    topo = flat_topology(8)
    bw, lat = archer_like_bandwidth(topo, noise_sigma=0.0).matrices(seed=7)
    return topo, LinkModel(bw, lat), cost_matrix_from_bandwidth(bw)
