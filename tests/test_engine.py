"""Tests for the unified stream-pass engine (repro.engine).

The load-bearing property: collapsing the four historical pass loops
onto one kernel changed *nothing* — the golden hashes below were
computed with the pre-engine (seed-state) implementations of HyperPRAW,
FennelStreaming and BufferedRestreamer, and the refactored partitioners
must reproduce them byte for byte.  Around that: the block sources, the
dense kernel state, shard-range splitting and the table merge.
"""

import hashlib

import numpy as np
import pytest

from repro.architecture.cost import uniform_cost_matrix
from repro.core import HyperPRAW, HyperPRAWConfig
from repro.engine import (
    NUMBA_AVAILABLE,
    DenseKernelState,
    FennelScorer,
    HyperPRAWScorer,
    InMemorySource,
    VertexBlock,
    apply_balance_cap,
    block_of,
    merge_shard_tables,
    pass_kernel,
    run_tasks,
    shard_ranges,
)
from repro.hypergraph.suite import load_instance
from repro.partitioning.fennel import FennelStreaming
from repro.streaming import BufferedRestreamer, HypergraphChunkStream, OnePassStreamer


def _digest(assignment: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(assignment, dtype=np.int64).tobytes()
    ).hexdigest()[:16]


@pytest.fixture(scope="module")
def instance():
    return load_instance("sparsine", scale=0.15)


@pytest.fixture(scope="module")
def mesh_instance():
    return load_instance("2cubes_sphere", scale=0.3)


class TestSeedStateGoldens:
    """Refactored partitioners reproduce the pre-engine assignments."""

    def test_hyperpraw_sparsine(self, instance):
        r = HyperPRAW(HyperPRAWConfig()).partition(instance, 8)
        assert _digest(r.assignment) == "2d6fa4e732279d36"

    def test_hyperpraw_mesh(self, mesh_instance):
        r = HyperPRAW(HyperPRAWConfig(record_history=False)).partition(
            mesh_instance, 4
        )
        assert _digest(r.assignment) == "9ea26121193ea3a6"

    def test_fennel_sparsine(self, instance):
        r = FennelStreaming().partition(instance, 8)
        assert _digest(r.assignment) == "f0d6772baeeed45d"

    def test_fennel_mesh_shuffled(self, mesh_instance):
        r = FennelStreaming(stream_order="shuffled").partition(
            mesh_instance, 4, seed=7
        )
        assert _digest(r.assignment) == "e7f2e49ccb259ca1"

    def test_buffered_restreamer_sparsine(self, instance):
        r = BufferedRestreamer(
            HyperPRAWConfig(record_history=False), buffer_size=50
        ).partition(instance, 4)
        assert _digest(r.assignment) == "00dde5dda85b2cd1"

    def test_onepass_sparsine(self, instance):
        r = OnePassStreamer(chunk_size=31).partition(instance, 8)
        assert _digest(r.assignment) == "fef8eed11a7839f5"


class TestVertexBlocks:
    def test_in_memory_source_natural_covers_csr(self, instance):
        blocks = list(InMemorySource(instance, block_size=64).blocks())
        assert sum(b.num_vertices for b in blocks) == instance.num_vertices
        assert sum(b.num_pins for b in blocks) == instance.num_pins
        v = 0
        for b in blocks:
            for i in range(b.num_vertices):
                assert b.ids[i] == v
                assert np.array_equal(b.edges_of(i), instance.edges_of(v))
                v += 1

    def test_in_memory_source_single_block_default(self, instance):
        blocks = list(InMemorySource(instance).blocks())
        assert len(blocks) == 1
        assert blocks[0].num_pins == instance.num_pins

    def test_in_memory_source_shuffled_order(self, instance):
        order = np.arange(instance.num_vertices, dtype=np.int64)
        np.random.default_rng(0).shuffle(order)
        blocks = list(InMemorySource(instance, order=order, block_size=33).blocks())
        seen = np.concatenate([b.ids for b in blocks])
        assert np.array_equal(seen, order)
        b = blocks[0]
        for i in range(b.num_vertices):
            assert np.array_equal(b.edges_of(i), instance.edges_of(int(b.ids[i])))

    def test_block_of_chunk(self, instance):
        chunk = next(iter(HypergraphChunkStream(instance, 40)))
        block = block_of(chunk)
        assert block.ids[0] == chunk.start
        assert block.num_vertices == chunk.num_vertices
        assert np.array_equal(block.vertex_edges, chunk.vertex_edges)

    def test_shard_ranges(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_ranges(2, 4) == [(0, 1), (1, 2)]
        assert shard_ranges(5, 1) == [(0, 5)]
        with pytest.raises(ValueError):
            shard_ranges(5, 0)


class TestDenseKernelState:
    def test_block_ops_match_vertex_ops(self, instance):
        p = 4
        a = DenseKernelState.empty(instance.num_edges, p)
        b = DenseKernelState.empty(instance.num_edges, p)
        rng = np.random.default_rng(1)
        parts = rng.integers(p, size=60)
        for v in range(60):
            a.place(instance.edges_of(v), int(parts[v]), 1.0)
            b.place(instance.edges_of(v), int(parts[v]), 1.0)
        block = next(iter(InMemorySource(instance, block_size=60).blocks()))
        # batch lift == per-vertex remove
        a.lift_block(
            block.vertex_edges, block.vertex_ptr, parts.astype(np.int64),
            block.vertex_weights,
        )
        for v in range(60):
            b.remove(instance.edges_of(v), int(parts[v]), 1.0)
        assert np.array_equal(a.edge_counts, b.edge_counts)
        assert np.allclose(a.loads, b.loads)
        # batch insert == per-vertex place (loads live in kernel, so the
        # helper updates counts only)
        a.insert_block(block.vertex_edges, block.vertex_ptr, parts.astype(np.int64))
        for v in range(60):
            b.place(instance.edges_of(v), int(parts[v]), 1.0)
        assert np.array_equal(a.edge_counts, b.edge_counts)

    def test_gather_block_matches_gather(self, instance):
        p = 3
        state = DenseKernelState.empty(instance.num_edges, p)
        for v in range(100):
            state.place(instance.edges_of(v), v % p, 1.0)
        block = next(iter(InMemorySource(instance, block_size=50).blocks()))
        X = state.gather_block(block.vertex_edges, block.vertex_ptr)
        for i in range(block.num_vertices):
            assert np.array_equal(
                X[i].astype(np.float64), state.gather(block.edges_of(i))
            )

    def test_rejects_non_contiguous_counts(self):
        counts = np.zeros((10, 4), dtype=np.int64)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            DenseKernelState(2, counts, np.zeros(2))


class TestKernel:
    def test_chunk_mode_equals_vertex_mode_when_exact(self, instance):
        """With block_size=1 there is no staleness: chunk == vertex."""
        p = 4
        C = uniform_cost_matrix(p)
        results = []
        for mode, size in (("vertex", None), ("chunk", 1)):
            state = DenseKernelState.empty(instance.num_edges, p)
            assignment = np.full(instance.num_vertices, -1, dtype=np.int64)
            pass_kernel(
                InMemorySource(instance, block_size=size).blocks(),
                state,
                HyperPRAWScorer(C, 1.0, np.full(p, instance.num_vertices / p)),
                assignment,
                restream=False,
                score_mode=mode,
            )
            results.append(assignment)
        assert np.array_equal(results[0], results[1])

    def test_fennel_chunked_is_valid_and_bounded(self, mesh_instance):
        from repro.core.metrics import evaluate_partition

        p = 4
        C = uniform_cost_matrix(p)
        exact = FennelStreaming().partition(mesh_instance, p)
        chunked = FennelStreaming(chunk_size=64).partition(mesh_instance, p)
        q_exact = evaluate_partition(mesh_instance, exact.assignment, p, C)
        q_chunk = evaluate_partition(mesh_instance, chunked.assignment, p, C)
        assert (chunked.assignment >= 0).all()
        assert q_chunk.pc_cost <= q_exact.pc_cost * 1.5
        assert q_chunk.imbalance <= 1.2 + 1e-9

    def test_cap_masks_full_partitions(self):
        values = np.array([5.0, 1.0, 3.0])
        loads = np.array([10.0, 0.0, 2.0])
        from repro.engine import apply_balance_cap

        apply_balance_cap(values, loads, 1.0, cap=5.0)
        assert values[0] == -np.inf
        assert values[1] == 1.0
        # all-full fallback: only the emptiest survives
        values = np.array([5.0, 1.0, 3.0])
        loads = np.array([10.0, 6.0, 8.0])
        apply_balance_cap(values, loads, 1.0, cap=5.0)
        assert values[1] == 1.0
        assert values[0] == -np.inf and values[2] == -np.inf

    def test_rejects_bad_score_mode(self, instance):
        with pytest.raises(ValueError, match="score_mode"):
            pass_kernel(
                (),
                DenseKernelState.empty(1, 2),
                FennelScorer(1.0, 1.5),
                np.zeros(1, dtype=np.int64),
                score_mode="wat",
            )


class TestParallelHelpers:
    def test_run_tasks_sequential_and_forked(self):
        tasks = [lambda k=k: k * k for k in range(4)]
        assert run_tasks(tasks, 1) == [0, 1, 4, 9]
        assert run_tasks(tasks, 4) == [0, 1, 4, 9]

    def test_run_tasks_propagates_worker_failure(self):
        def boom():
            raise RuntimeError("shard exploded")

        with pytest.raises(RuntimeError, match="worker failed"):
            run_tasks([boom, lambda: 1], 2)

    def test_merge_shard_tables(self):
        t1 = (np.array([0, 2, 5]), np.array([[1, 0], [2, 1], [0, 3]]))
        t2 = (np.array([2, 7]), np.array([[1, 1], [4, 0]]))
        edges, counts, boundary = merge_shard_tables([t1, t2], 2)
        assert edges.tolist() == [0, 2, 5, 7]
        assert counts.tolist() == [[1, 0], [3, 2], [0, 3], [4, 0]]
        assert boundary.tolist() == [2]

    def test_merge_empty(self):
        edges, counts, boundary = merge_shard_tables([], 3)
        assert edges.size == 0 and counts.shape == (0, 3) and boundary.size == 0


class TestScorerEquivalence:
    """The kernel scorers agree with the reference value functions."""

    def test_hyperpraw_scorer_matches_assignment_values(self, instance):
        from repro.core.value import assignment_values

        p = 6
        rng = np.random.default_rng(3)
        C = uniform_cost_matrix(p)
        loads = rng.uniform(1, 10, p)
        expected = np.full(p, 5.0)
        X = rng.integers(0, 9, p).astype(np.float64)
        scorer = HyperPRAWScorer(C, 2.5, expected, presence_threshold=1)
        out = np.empty(p)
        scorer.vertex_values(X, loads, out)
        ref = assignment_values(X, C, loads, expected, 2.5)
        assert np.allclose(out, ref)

    def test_block_terms_match_vertex_terms(self):
        p = 4
        rng = np.random.default_rng(4)
        C = rng.uniform(0, 2, (p, p))
        np.fill_diagonal(C, 0.0)
        C = (C + C.T) / 2
        scorer = HyperPRAWScorer(C, 1.0, np.ones(p), presence_threshold=2)
        X = rng.integers(0, 5, (7, p)).astype(np.float64)
        M = scorer.block_terms(X)
        loads = np.zeros(p)
        out = np.empty(p)
        for i in range(7):
            scorer.vertex_values(X[i], loads, out)
            assert np.allclose(M[i], out)


def _run_vertex_kernel(instance, scorer_kind, restream, cap, kernel):
    """One vertex-mode pass with a chosen kernel; returns mode/out/state."""
    p = 4
    n = instance.num_vertices
    state = DenseKernelState.empty(instance.num_edges, p)
    assignment = np.full(n, -1, dtype=np.int64)
    if restream:
        rng = np.random.default_rng(5)
        assignment[:] = rng.integers(p, size=n)
        for v in range(n):
            state.place(instance.edges_of(v), int(assignment[v]), 1.0)
    if scorer_kind == "eq1":
        scorer = HyperPRAWScorer(
            uniform_cost_matrix(p), 1.7, np.full(p, n / p), presence_threshold=1
        )
    else:
        scorer = FennelScorer(1.2, 1.5)
    mode = pass_kernel(
        InMemorySource(instance, block_size=37).blocks(),
        state,
        scorer,
        assignment,
        restream=restream,
        score_mode="vertex",
        cap=cap,
        kernel=kernel,
    )
    return mode, assignment, state


class TestKernelModes:
    """The kernel= knob: njit bit-identity, fallback, observability.

    The bit-identity suite runs only where numba is installed (the CI
    ``numba`` job); the fallback and metadata tests run everywhere.
    Note the seed-state goldens above run with the default
    ``kernel="auto"``, so on a numba box they *also* pin that the
    compiled kernel reproduces the historical assignments byte for
    byte.
    """

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    @pytest.mark.parametrize("scorer_kind", ["eq1", "fennel"])
    @pytest.mark.parametrize("restream", [False, True])
    @pytest.mark.parametrize("capped", [False, True])
    def test_njit_bit_identical_to_python(
        self, instance, scorer_kind, restream, capped
    ):
        cap = 1.05 * instance.num_vertices / 4 if capped else None
        m_py, a_py, s_py = _run_vertex_kernel(
            instance, scorer_kind, restream, cap, "python"
        )
        m_nj, a_nj, s_nj = _run_vertex_kernel(
            instance, scorer_kind, restream, cap, "njit"
        )
        assert (m_py, m_nj) == ("python", "njit")
        assert _digest(a_py) == _digest(a_nj)
        assert np.array_equal(s_py.edge_counts, s_nj.edge_counts)
        # bitwise float equality, not allclose: same op order is the claim
        assert np.array_equal(s_py.loads, s_nj.loads)

    def test_explicit_njit_on_lru_table_warns_and_falls_back(self, instance):
        """StreamingState always runs python; explicit njit says so once."""
        streamer = OnePassStreamer(chunk_size=32, kernel="njit")
        with pytest.warns(RuntimeWarning, match="falling back"):
            r = streamer.partition(instance, 4)
        assert r.metadata["kernel_mode"] == "python"

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_njit_without_numba_warns_and_falls_back(self, instance):
        cfg = HyperPRAWConfig(record_history=False, kernel="njit")
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            r = HyperPRAW(cfg).partition(instance, 4)
        assert r.metadata["kernel_mode"] == "python"
        # and the fallback is the exact python-path assignment
        explicit = HyperPRAW(
            HyperPRAWConfig(record_history=False, kernel="python")
        ).partition(instance, 4)
        assert np.array_equal(r.assignment, explicit.assignment)

    def test_kernel_metadata_surfaced(self, instance):
        r = HyperPRAW(HyperPRAWConfig(record_history=False)).partition(
            instance, 4
        )
        assert r.metadata["kernel_mode"] in ("python", "njit")
        assert r.metadata["pass_seconds"] > 0.0
        r2 = OnePassStreamer(chunk_size=32).partition(instance, 4)
        assert r2.metadata["kernel_mode"] == "python"
        assert r2.metadata["pass_seconds"] >= 0.0
        r3 = BufferedRestreamer(
            HyperPRAWConfig(record_history=False), buffer_size=64
        ).partition(instance, 4)
        assert r3.metadata["kernel_mode"] == "python"
        assert r3.metadata["pass_seconds"] > 0.0

    def test_invalid_kernel_rejected_everywhere(self, instance):
        with pytest.raises(ValueError, match="kernel"):
            HyperPRAWConfig(kernel="wat")
        with pytest.raises(ValueError, match="kernel"):
            OnePassStreamer(kernel="wat")
        with pytest.raises(ValueError, match="kernel"):
            pass_kernel(
                (),
                DenseKernelState.empty(1, 2),
                FennelScorer(1.0, 1.5),
                np.zeros(1, dtype=np.int64),
                kernel="wat",
            )

    def test_chunked_restream_matches_chunked_inmemory(self, mesh_instance):
        """Unbounded-buffer chunk restream == chunked in-memory HyperPRAW.

        The chunk-restream anchor: scores freeze at sub-block start in
        both, loads update identically, so the streamed path must land
        on the in-memory chunked assignment bit for bit.
        """
        cfg = HyperPRAWConfig(
            record_history=False, chunk_size=64, max_iterations=15
        )
        anchor = HyperPRAW(cfg).partition(mesh_instance, 4)
        streamed = BufferedRestreamer(cfg, buffer_size=None).partition(
            mesh_instance, 4
        )
        assert np.array_equal(anchor.assignment, streamed.assignment)
        assert streamed.metadata["score_mode"] == "chunk"

    def test_cap_out_and_scratch_buffers_preserve_semantics(self):
        rng = np.random.default_rng(6)
        values = rng.normal(size=8)
        loads = rng.uniform(0, 10, 8)
        expected = values.copy()
        apply_balance_cap(expected, loads, 0.7, cap=6.0)
        got = values.copy()
        out = np.empty(8, dtype=bool)
        scratch = np.empty(8)
        apply_balance_cap(got, loads, 0.7, cap=6.0, out=out, scratch=scratch)
        assert np.array_equal(got, expected)
        assert np.array_equal(out, np.isneginf(got))
