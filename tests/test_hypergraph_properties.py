"""Property-based tests (hypothesis) for the hypergraph substrate.

Strategies build arbitrary small hypergraphs; the properties assert the
structural invariants every other subsystem relies on: CSR consistency,
incidence symmetry, pin conservation under transforms, duality involution
up to isolated-vertex dropping.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hypergraph.generators import dual_hypergraph
from repro.hypergraph.model import Hypergraph
from repro.hypergraph.stats import compute_stats


@st.composite
def hypergraphs(draw, max_vertices=24, max_edges=16, max_card=6):
    """Arbitrary small hypergraph."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(num_edges):
        size = draw(st.integers(min_value=1, max_value=min(max_card, n)))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
            )
        )
        edges.append(pins)
    return Hypergraph(n, edges)


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_structural_invariants(hg):
    hg.validate()
    # pin count is consistent between both CSR directions
    assert hg.degrees().sum() == hg.num_pins
    assert hg.cardinalities().sum() == hg.num_pins
    # every edge's pins are unique and in range
    for e in range(hg.num_edges):
        pins = hg.edge(e)
        assert len(set(pins.tolist())) == pins.size
        assert pins.min() >= 0 and pins.max() < hg.num_vertices


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_incidence_matrix_consistent(hg):
    inc = hg.incidence_matrix()
    assert inc.shape == (hg.num_edges, hg.num_vertices)
    if hg.num_edges:
        rows = np.asarray(inc.sum(axis=1)).ravel()
        assert np.array_equal(rows, hg.cardinalities())
        cols = np.asarray(inc.sum(axis=0)).ravel()
        assert np.array_equal(cols, hg.degrees())


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_edge_list_roundtrip(hg):
    rebuilt = Hypergraph(hg.num_vertices, hg.to_edge_list())
    assert rebuilt == hg


@settings(max_examples=60, deadline=None)
@given(hypergraphs())
def test_singleton_removal_only_drops_singletons(hg):
    cleaned = hg.without_singleton_edges()
    assert cleaned.num_vertices == hg.num_vertices
    assert (cleaned.cardinalities() > 1).all() or cleaned.num_edges == 0
    expected = int((hg.cardinalities() > 1).sum())
    assert cleaned.num_edges == expected


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_dual_preserves_pins(hg):
    """The dual keeps one pin per (vertex, edge) incidence of non-isolated
    vertices, and dualising twice returns to the original pin count when
    there are no isolated vertices or empty-after-drop edges."""
    dual = dual_hypergraph(hg)
    assert dual.num_pins == hg.num_pins
    # dual vertices = original edges
    assert dual.num_vertices == max(hg.num_edges, 1) or hg.num_edges == 0


@settings(max_examples=40, deadline=None)
@given(hypergraphs())
def test_stats_are_consistent(hg):
    s = compute_stats(hg)
    assert s.num_pins == hg.num_pins
    assert s.isolated_vertices == int((hg.degrees() == 0).sum())
    if hg.num_edges:
        assert s.max_cardinality >= s.avg_cardinality >= 1.0
