"""Tests for the synthetic generators and the Table 1 stand-in suite."""

import numpy as np
import pytest

from repro.hypergraph import generators as gen
from repro.hypergraph.stats import compute_stats
from repro.hypergraph.suite import (
    FIGURE3_INSTANCES,
    PAPER_TABLE1,
    benchmark_suite,
    instance_names,
    load_instance,
)


class TestGeneratorsBasics:
    def test_random_uniform_shape(self):
        hg = gen.random_uniform_hypergraph(200, 150, 8.0, seed=0)
        assert hg.num_vertices == 200
        assert hg.num_edges == 150
        s = compute_stats(hg)
        assert 6.0 <= s.avg_cardinality <= 10.0

    def test_powerlaw_has_hubs(self):
        hg = gen.powerlaw_hypergraph(500, 500, 3.0, exponent=1.6, hub_offset=10, seed=0)
        degrees = hg.degrees()
        # low-index vertices are far more popular than the tail
        assert degrees[:10].mean() > 5 * max(degrees[400:].mean(), 0.1)

    def test_powerlaw_hub_offset_flattens(self):
        sharp = gen.powerlaw_hypergraph(500, 500, 3.0, hub_offset=10, seed=0)
        flat = gen.powerlaw_hypergraph(500, 500, 3.0, hub_offset=1000, seed=0)
        assert sharp.degrees().max() > flat.degrees().max()

    def test_mesh_has_locality(self):
        hg = gen.mesh_matrix_hypergraph(512, 10.0, dims=3, seed=0)
        # pins of a row stay close to the row index in flattened order:
        # the stencil spans a few grid lines, far below uniform spread.
        spans = []
        for e in range(0, 512, 16):
            pins = hg.edge(e)
            spans.append(np.abs(pins - e).mean())
        assert np.mean(spans) < 512 / 4

    def test_mesh_includes_diagonal(self):
        hg = gen.mesh_matrix_hypergraph(64, 5.0, dims=2, seed=1)
        for e in range(hg.num_edges):
            assert e in hg.edge(e)

    def test_contact_is_clustered(self):
        hg = gen.contact_hypergraph(300, 40.0, intra_cluster_prob=0.95, seed=0)
        cluster = max(4, int(40 * 1.5))
        intra = 0
        total = 0
        for e in range(hg.num_edges):
            pins = hg.edge(e)
            total += pins.size
            intra += int((pins // cluster == e // cluster).sum())
        assert intra / total > 0.7

    def test_sat_primal_dimensions(self):
        hg = gen.sat_primal_hypergraph(100, 900, 3.0, seed=0)
        assert hg.num_vertices == 100
        assert hg.num_edges == 900

    def test_sat_dual_inverts(self):
        primal = gen.sat_primal_hypergraph(80, 400, 3.0, seed=1)
        dual = gen.sat_dual_hypergraph(80, 400, 3.0, seed=1)
        assert dual.num_vertices == 400  # clauses
        assert dual.num_edges <= 80  # variables (unused ones dropped)
        assert dual.num_pins == primal.num_pins

    def test_sat_community_structure(self):
        """Most co-occurrences stay within a community block."""
        ptr, vars_ = gen.sat_instance(
            1000, 2000, 3.0, locality_window=0.05, cross_community_prob=0.2, seed=0
        )
        comm = vars_ // max(2, int(0.05 * 1000))
        same = 0
        total = 0
        for c in range(2000):
            block = comm[ptr[c] : ptr[c + 1]]
            total += block.size
            counts = np.bincount(block)
            same += counts.max()
        assert same / total > 0.6

    def test_generators_deterministic(self):
        a = gen.random_uniform_hypergraph(100, 100, 5.0, seed=9)
        b = gen.random_uniform_hypergraph(100, 100, 5.0, seed=9)
        assert a == b

    def test_dual_drops_isolated(self):
        from repro.hypergraph.model import Hypergraph

        hg = Hypergraph(5, [[0, 1], [1, 2]])  # vertices 3,4 isolated
        dual = gen.dual_hypergraph(hg)
        assert dual.num_vertices == 2
        assert dual.num_edges == 3  # vertices 0,1,2 become nets

    def test_validation(self):
        with pytest.raises(ValueError):
            gen.random_uniform_hypergraph(0, 10, 3.0)
        with pytest.raises(ValueError):
            gen.powerlaw_hypergraph(10, 10, 3.0, exponent=-1)
        with pytest.raises(ValueError):
            gen.mesh_matrix_hypergraph(10, 3.0, long_range_fraction=2.0)
        with pytest.raises(ValueError):
            gen.sat_instance(10, 10, 3.0, locality_window=1.5)


class TestSuite:
    def test_all_ten_instances(self):
        names = instance_names()
        assert len(names) == 10
        assert set(names) == set(PAPER_TABLE1)

    def test_figure3_subset(self):
        assert set(FIGURE3_INSTANCES) <= set(instance_names())

    def test_unknown_instance(self):
        with pytest.raises(KeyError, match="unknown instance"):
            load_instance("not-a-dataset")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            load_instance("sparsine", scale=0)

    def test_default_build_deterministic(self):
        assert load_instance("sparsine", scale=0.1) == load_instance(
            "sparsine", scale=0.1
        )

    def test_scale_shrinks(self):
        big = load_instance("webbase-1M", scale=0.5)
        small = load_instance("webbase-1M", scale=0.1)
        assert small.num_vertices < big.num_vertices

    @pytest.mark.parametrize("name", instance_names())
    def test_shape_matches_paper(self, name):
        """Average cardinality within 25% and hyperedge/vertex ratio within
        15% of Table 1 at half scale."""
        hg = load_instance(name, scale=0.5)
        s = compute_stats(hg)
        _, _, _, paper_card, paper_ratio = PAPER_TABLE1[name]
        assert abs(s.avg_cardinality - paper_card) / paper_card < 0.25
        assert abs(s.edge_vertex_ratio - paper_ratio) / paper_ratio < 0.15

    def test_benchmark_suite_subset(self):
        suite = benchmark_suite(scale=0.1, names=["sparsine", "pdb1HYS"])
        assert list(suite) == ["sparsine", "pdb1HYS"]
