"""Tests for the HyperPRAW restreaming algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.architecture.cost import uniform_cost_matrix
from repro.core.config import HyperPRAWConfig
from repro.core.hyperpraw import HyperPRAW
from repro.core.metrics import evaluate_partition, imbalance
from repro.core.schedule import TemperingSchedule, initial_alpha
from repro.hypergraph.model import Hypergraph
from repro.hypergraph.suite import load_instance


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = HyperPRAWConfig()
        assert cfg.alpha_update == 1.7
        assert cfg.refinement_factor == 0.95
        assert cfg.refinement is True

    def test_validation(self):
        with pytest.raises(ValueError):
            HyperPRAWConfig(imbalance_tolerance=0.9)
        with pytest.raises(ValueError):
            HyperPRAWConfig(max_iterations=0)
        with pytest.raises(ValueError):
            HyperPRAWConfig(alpha_update=0)
        with pytest.raises(ValueError):
            HyperPRAWConfig(stream_order="zigzag")
        with pytest.raises(ValueError):
            HyperPRAWConfig(presence_threshold=0)

    def test_with_(self):
        cfg = HyperPRAWConfig().with_(refinement_factor=1.0)
        assert cfg.refinement_factor == 1.0
        assert HyperPRAWConfig().refinement_factor == 0.95

    def test_paper_presets(self):
        assert HyperPRAWConfig.paper_no_refinement().refinement is False
        assert HyperPRAWConfig.paper_refinement_100().refinement_factor == 1.0
        assert HyperPRAWConfig.paper_refinement_095().refinement_factor == 0.95


class TestSchedule:
    def test_initial_alpha_modes(self):
        hg = Hypergraph(100, [[i, i + 1] for i in range(99)])
        paper = initial_alpha(hg, 4, "paper")
        fennel = initial_alpha(hg, 4, "fennel")
        assert paper == pytest.approx(2 * 99 / 10)
        assert fennel == pytest.approx(2 * 99 / 1000)
        assert initial_alpha(hg, 4, 0.5) == 0.5
        with pytest.raises(ValueError):
            initial_alpha(hg, 4, "magic")
        with pytest.raises(ValueError):
            initial_alpha(hg, 4, -1.0)

    def test_tempering_phases(self):
        sched = TemperingSchedule(alpha=1.0, tempering_update=1.7, refinement_factor=0.95)
        sched.after_pass(within_tolerance=False)
        assert sched.alpha == pytest.approx(1.7)
        sched.after_pass(within_tolerance=True)
        assert sched.alpha == pytest.approx(1.7 * 0.95)

    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            TemperingSchedule(alpha=0.0)
        with pytest.raises(ValueError):
            TemperingSchedule(alpha=1.0, tempering_update=-1)


class TestBasicBehaviour:
    def test_assignment_is_valid(self, small_random):
        res = HyperPRAW.basic().partition(small_random, 8)
        assert res.assignment.shape == (small_random.num_vertices,)
        assert res.assignment.min() >= 0
        assert res.assignment.max() < 8
        assert res.num_parts == 8

    def test_respects_imbalance_tolerance(self, small_random):
        cfg = HyperPRAWConfig(imbalance_tolerance=1.1)
        res = HyperPRAW.basic(cfg).partition(small_random, 8)
        assert res.metadata["converged"]
        assert imbalance(small_random, res.assignment, 8) <= 1.1 + 1e-9

    def test_single_partition(self, tiny_hypergraph):
        res = HyperPRAW.basic().partition(tiny_hypergraph, 1)
        assert np.all(res.assignment == 0)

    def test_deterministic(self, small_random):
        a = HyperPRAW.basic().partition(small_random, 6).assignment
        b = HyperPRAW.basic().partition(small_random, 6).assignment
        assert np.array_equal(a, b)

    def test_too_many_parts_rejected(self, tiny_hypergraph):
        with pytest.raises(ValueError):
            HyperPRAW.basic().partition(tiny_hypergraph, 7)
        with pytest.raises(ValueError):
            HyperPRAW.basic().partition(tiny_hypergraph, 0)

    def test_handles_isolated_vertices(self):
        hg = Hypergraph(8, [[0, 1], [1, 2]])  # vertices 3..7 isolated
        res = HyperPRAW.basic().partition(hg, 4)
        assert imbalance(hg, res.assignment, 4) <= 1.5

    def test_history_recorded(self, small_random):
        res = HyperPRAW.basic().partition(small_random, 6)
        assert len(res.iterations) == res.metadata["iterations_run"]
        assert res.iterations[0].iteration == 1
        phases = {r.phase for r in res.iterations}
        assert phases <= {"tempering", "refinement"}

    def test_history_disabled(self, small_random):
        cfg = HyperPRAWConfig(record_history=False)
        res = HyperPRAW.basic(cfg).partition(small_random, 6)
        assert res.iterations == []

    def test_finds_cluster_structure(self, two_cluster_hypergraph):
        """Two dense clusters + one bridge: the bisection must separate
        the clusters (only the bridge edge cut)."""
        res = HyperPRAW.basic().partition(two_cluster_hypergraph, 2)
        a = res.assignment
        assert len(set(a[:5].tolist())) == 1
        assert len(set(a[5:].tolist())) == 1
        assert a[0] != a[5]


class TestVariants:
    def test_basic_ignores_cost_matrix(self, small_random, archer_machine_24):
        _, _, cost = archer_machine_24
        with_cost = HyperPRAW.basic().partition(small_random, 24, cost_matrix=cost)
        without = HyperPRAW.basic().partition(small_random, 24)
        assert np.array_equal(with_cost.assignment, without.assignment)
        assert with_cost.metadata["architecture_aware"] is False

    def test_aware_uses_cost_matrix(self, small_mesh, archer_machine_24):
        _, _, cost = archer_machine_24
        aware = HyperPRAW.aware().partition(small_mesh, 24, cost_matrix=cost)
        basic = HyperPRAW.basic().partition(small_mesh, 24)
        assert aware.metadata["architecture_aware"] is True
        assert not np.array_equal(aware.assignment, basic.assignment)

    def test_aware_on_flat_machine_equals_basic(self, small_random, flat_machine_8):
        """Control: with a homogeneous machine the cost matrix is uniform
        and the two variants must coincide exactly."""
        _, _, cost = flat_machine_8
        aware = HyperPRAW(variant="hyperpraw-aware").partition(
            small_random, 8, cost_matrix=np.round(cost, 12)
        )
        basic = HyperPRAW.basic().partition(small_random, 8)
        assert np.array_equal(aware.assignment, basic.assignment)

    def test_aware_lowers_pc_cost(self, small_mesh, archer_machine_24):
        """The aware variant optimises PC cost; it must not lose to basic
        on the metric it targets."""
        _, _, cost = archer_machine_24
        aware = HyperPRAW.aware().partition(small_mesh, 24, cost_matrix=cost)
        basic = HyperPRAW.basic().partition(small_mesh, 24)
        q_aware = evaluate_partition(small_mesh, aware.assignment, 24, cost)
        q_basic = evaluate_partition(small_mesh, basic.assignment, 24, cost)
        assert q_aware.pc_cost <= q_basic.pc_cost * 1.02

    def test_invalid_cost_matrix_rejected(self, small_random):
        bad = np.ones((8, 8))  # non-zero diagonal
        with pytest.raises(ValueError):
            HyperPRAW.aware().partition(small_random, 8, cost_matrix=bad)


class TestRefinement:
    def test_refinement_improves_over_none(self, small_mesh, archer_machine_24):
        """Figure 3's headline: refinement reaches lower PC cost."""
        _, _, cost = archer_machine_24
        none = HyperPRAW.aware(HyperPRAWConfig.paper_no_refinement()).partition(
            small_mesh, 24, cost_matrix=cost
        )
        ref = HyperPRAW.aware(HyperPRAWConfig.paper_refinement_095()).partition(
            small_mesh, 24, cost_matrix=cost
        )
        assert ref.metadata["final_pc_cost"] <= none.metadata["final_pc_cost"] + 1e-9

    def test_no_refinement_stops_at_tolerance(self, small_random):
        cfg = HyperPRAWConfig.paper_no_refinement()
        res = HyperPRAW.basic(cfg).partition(small_random, 6)
        # last recorded pass is the first within tolerance
        within = [r for r in res.iterations if r.phase == "refinement"]
        assert len(within) == 1

    def test_rollback_returns_best_pass(self, small_mesh, archer_machine_24):
        """When refinement rolls back, the returned PC cost equals the
        minimum over all in-tolerance passes."""
        _, _, cost = archer_machine_24
        res = HyperPRAW.aware().partition(small_mesh, 24, cost_matrix=cost)
        if res.metadata["rolled_back"]:
            in_tol = [r.pc_cost for r in res.iterations if r.phase == "refinement"]
            assert res.metadata["final_pc_cost"] == pytest.approx(min(in_tol))

    def test_max_iterations_cap(self, small_random):
        cfg = HyperPRAWConfig(max_iterations=3)
        res = HyperPRAW.basic(cfg).partition(small_random, 6)
        assert res.metadata["iterations_run"] <= 3

    def test_history_series(self, small_random):
        res = HyperPRAW.basic().partition(small_random, 6)
        iters, costs = res.history_series()
        assert iters == [r.iteration for r in res.iterations]
        assert res.final_pc_cost() == costs[-1]


class TestStreamOrder:
    def test_shuffled_is_seed_deterministic(self, small_random):
        cfg = HyperPRAWConfig(stream_order="shuffled")
        a = HyperPRAW.basic(cfg).partition(small_random, 6, seed=3).assignment
        b = HyperPRAW.basic(cfg).partition(small_random, 6, seed=3).assignment
        c = HyperPRAW.basic(cfg).partition(small_random, 6, seed=4).assignment
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
