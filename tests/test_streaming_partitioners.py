"""Tests for the out-of-core streaming partitioners.

The anchor property: with unbounded buffer and presence table,
``BufferedRestreamer`` *is* in-memory HyperPRAW — same assignments, not
just similar quality.  Around it: one-pass determinism and chunk-size
invariance, bounded-buffer quality ordering, the capped LRU table, and
the chunked in-memory hot path.
"""

import numpy as np
import pytest

from repro.architecture.cost import uniform_cost_matrix
from repro.core import HyperPRAW, HyperPRAWConfig, evaluate_partition
from repro.hypergraph.io import write_hmetis
from repro.hypergraph.suite import load_instance
from repro.streaming import (
    BufferedRestreamer,
    HypergraphChunkStream,
    OnePassStreamer,
    StreamingState,
    stream_hmetis,
)


@pytest.fixture(scope="module")
def instance():
    return load_instance("sparsine", scale=0.15)


@pytest.fixture(scope="module")
def mesh_instance():
    return load_instance("2cubes_sphere", scale=0.3)


class TestStreamingState:
    def test_unbounded_tracks_exact_counts(self):
        state = StreamingState(3, expected_loads=np.ones(3))
        edges = np.array([0, 5, 9])
        state.place(edges, 1, 1.0)
        state.place(np.array([5]), 2, 1.0)
        assert state.gather(edges).tolist() == [0, 3, 1]
        assert state.gather(np.array([5])).tolist() == [0, 1, 1]
        state.remove(np.array([5]), 2, 1.0)
        assert state.gather(np.array([5])).tolist() == [0, 1, 0]
        assert state.loads.tolist() == [0.0, 1.0, 0.0]

    def test_lru_eviction_caps_table(self):
        state = StreamingState(
            2, expected_loads=np.ones(2), max_tracked_edges=2
        )
        state.place(np.array([0]), 0, 1.0)
        state.place(np.array([1]), 0, 1.0)
        state.place(np.array([2]), 1, 1.0)  # evicts edge 0 (LRU)
        assert state.num_tracked_edges == 2
        assert state.evictions == 1
        assert state.gather(np.array([0])).tolist() == [0, 0]
        assert state.gather(np.array([2])).tolist() == [0, 1]

    def test_remove_untracked_is_clamped(self):
        state = StreamingState(2, expected_loads=np.ones(2), max_tracked_edges=1)
        state.place(np.array([0]), 0, 1.0)
        state.place(np.array([1]), 0, 1.0)  # evicts edge 0
        state.remove(np.array([0]), 0, 1.0)  # counts lost: no phantom -1
        assert state.gather(np.array([0])).tolist() == [0, 0]
        assert (state._table >= 0).all()

    def test_gather_block_matches_gather(self, instance):
        state = StreamingState(4, expected_loads=np.ones(4))
        rng = np.random.default_rng(0)
        for v in range(60):
            state.place(instance.edges_of(v), int(rng.integers(4)), 1.0)
        stream = HypergraphChunkStream(instance, chunk_size=25)
        chunk = next(iter(stream))
        X = state.gather_block(chunk.vertex_edges, chunk.vertex_ptr)
        for i in range(chunk.num_vertices):
            assert X[i].tolist() == state.gather(chunk.edges_of(i)).tolist()

    def test_pc_cost_matches_dense_metric(self, instance):
        from repro.core.metrics import partitioning_comm_cost

        p = 4
        C = uniform_cost_matrix(p)
        assignment = np.arange(instance.num_vertices) % p
        state = StreamingState(p, expected_loads=np.ones(p))
        for v in range(instance.num_vertices):
            state.place(instance.edges_of(v), int(assignment[v]), 1.0)
        dense = partitioning_comm_cost(instance, assignment, p, C)
        sparse = state.pc_cost(C, edge_weights=instance.edge_weights)
        assert sparse == pytest.approx(dense, rel=1e-12)


class TestOnePassStreamer:
    def test_chunk_size_invariant(self, instance):
        a = OnePassStreamer(chunk_size=7).partition(instance, 8)
        b = OnePassStreamer(chunk_size=100).partition(instance, 8)
        assert np.array_equal(a.assignment, b.assignment)

    def test_disk_equals_memory(self, instance, tmp_path):
        path = tmp_path / "h.hgr"
        write_hmetis(instance, path)
        mem = OnePassStreamer(chunk_size=31).partition(instance, 8)
        disk = OnePassStreamer().partition_stream(
            stream_hmetis(path, chunk_size=31), 8
        )
        assert np.array_equal(mem.assignment, disk.assignment)

    def test_metadata_and_balance(self, instance):
        result = OnePassStreamer(balance_slack=1.2).partition(instance, 8)
        assert result.metadata["single_pass"] is True
        assert result.metadata["evictions"] == 0
        assert result.metadata["imbalance"] <= 1.2 + 1e-9
        assert (result.assignment >= 0).all()

    def test_capped_table_still_partitions(self, instance):
        result = OnePassStreamer(
            max_tracked_edges=instance.num_edges // 8
        ).partition(instance, 8)
        assert result.metadata["evictions"] > 0
        assert (
            result.metadata["peak_tracked_edges"] <= instance.num_edges // 8
        )
        assert (result.assignment >= 0).all()

    def test_chunk_score_mode_valid_and_bounded(self, instance):
        p = 8
        C = uniform_cost_matrix(p)
        vertex = OnePassStreamer(score_mode="vertex").partition(instance, p)
        chunk = OnePassStreamer(score_mode="chunk", chunk_size=64).partition(
            instance, p
        )
        qv = evaluate_partition(instance, vertex.assignment, p, C)
        qc = evaluate_partition(instance, chunk.assignment, p, C)
        # block staleness may cost some quality, but not collapse
        assert qc.pc_cost <= qv.pc_cost * 1.5
        assert qc.imbalance <= 1.2 + 1e-9

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="chunk_size"):
            OnePassStreamer(chunk_size=0)
        with pytest.raises(ValueError, match="balance_slack"):
            OnePassStreamer(balance_slack=1.0)
        with pytest.raises(ValueError, match="score_mode"):
            OnePassStreamer(score_mode="wat")


class TestBufferedRestreamer:
    def test_unbounded_reproduces_hyperpraw(self, instance):
        """The tentpole property: buffer=inf + table=inf == Algorithm 1."""
        cfg = HyperPRAWConfig()
        ref = HyperPRAW(cfg).partition(instance, 8)
        streamed = BufferedRestreamer(cfg).partition(instance, 8)
        assert np.array_equal(ref.assignment, streamed.assignment)
        assert (
            streamed.metadata["iterations_run"] == ref.metadata["iterations_run"]
        )

    def test_unbounded_reproduces_hyperpraw_from_disk(self, instance, tmp_path):
        path = tmp_path / "h.hgr"
        write_hmetis(instance, path)
        cfg = HyperPRAWConfig(record_history=False)
        ref = HyperPRAW(cfg).partition(instance, 8)
        streamed = BufferedRestreamer(cfg).partition_stream(
            stream_hmetis(path, chunk_size=40, buffer_pins=256), 8
        )
        assert np.array_equal(ref.assignment, streamed.assignment)

    @pytest.mark.parametrize("variant", ["no_refinement", "threshold2"])
    def test_unbounded_equivalence_across_configs(self, instance, variant):
        cfg = (
            HyperPRAWConfig.paper_no_refinement()
            if variant == "no_refinement"
            else HyperPRAWConfig(presence_threshold=2)
        )
        ref = HyperPRAW(cfg).partition(instance, 6)
        streamed = BufferedRestreamer(cfg).partition(instance, 6)
        assert np.array_equal(ref.assignment, streamed.assignment)

    def test_quality_improves_with_buffer(self, mesh_instance):
        """Bounded windows: more buffer -> closer to in-memory quality."""
        p = 8
        C = uniform_cost_matrix(p)
        cfg = HyperPRAWConfig(record_history=False)
        V = mesh_instance.num_vertices
        costs = []
        for buffer in (V // 16, V // 4, V):
            r = BufferedRestreamer(cfg, buffer_size=buffer).partition(
                mesh_instance, p
            )
            costs.append(
                evaluate_partition(mesh_instance, r.assignment, p, C).pc_cost
            )
        assert costs[0] >= costs[1] >= costs[2]

    def test_bounded_gap_within_25_percent(self, mesh_instance):
        """Acceptance: streamed quality gap <= 25% at a quarter-|V| window."""
        p = 8
        C = uniform_cost_matrix(p)
        cfg = HyperPRAWConfig(record_history=False)
        base = HyperPRAW(cfg).partition(mesh_instance, p)
        base_pc = evaluate_partition(mesh_instance, base.assignment, p, C).pc_cost
        r = BufferedRestreamer(
            cfg, buffer_size=mesh_instance.num_vertices // 4
        ).partition(mesh_instance, p)
        pc = evaluate_partition(mesh_instance, r.assignment, p, C).pc_cost
        assert pc <= base_pc * 1.25
        assert r.metadata["batches"] >= 4

    def test_bounded_buffer_batches_and_metadata(self, instance):
        cfg = HyperPRAWConfig(record_history=False)
        r = BufferedRestreamer(cfg, buffer_size=50).partition(instance, 4)
        assert r.metadata["batches"] == -(-instance.num_vertices // 50)
        assert r.metadata["buffer_size"] == 50
        assert (r.assignment >= 0).all()

    def test_buffer_bound_enforced_on_disk_path(self, instance, tmp_path):
        """Stream chunks coarser than the buffer must be split, not let
        the window silently widen past its bound."""
        path = tmp_path / "h.hgr"
        write_hmetis(instance, path)
        cfg = HyperPRAWConfig(record_history=False, max_iterations=10)
        r = BufferedRestreamer(cfg, buffer_size=30).partition_stream(
            stream_hmetis(path, chunk_size=100), 4
        )
        assert r.metadata["batches"] == -(-instance.num_vertices // 30)
        assert (r.assignment >= 0).all()

    def test_rejects_shuffled_order(self):
        with pytest.raises(ValueError, match="natural"):
            BufferedRestreamer(HyperPRAWConfig(stream_order="shuffled"))

    def test_capped_table_still_partitions(self, instance):
        cfg = HyperPRAWConfig(record_history=False, max_iterations=20)
        r = BufferedRestreamer(
            cfg, buffer_size=60, max_tracked_edges=instance.num_edges // 8
        ).partition(instance, 4)
        assert r.metadata["evictions"] > 0
        assert (r.assignment >= 0).all()


class TestChunkedHyperPRAW:
    """The vectorised in-memory hot path (HyperPRAWConfig.chunk_size)."""

    def test_quality_parity_with_sequential(self, mesh_instance):
        p = 8
        C = uniform_cost_matrix(p)
        seq = HyperPRAW(HyperPRAWConfig(record_history=False)).partition(
            mesh_instance, p
        )
        chk = HyperPRAW(
            HyperPRAWConfig(record_history=False, chunk_size=64)
        ).partition(mesh_instance, p)
        q_seq = evaluate_partition(mesh_instance, seq.assignment, p, C)
        q_chk = evaluate_partition(mesh_instance, chk.assignment, p, C)
        assert q_chk.pc_cost <= q_seq.pc_cost * 1.3
        assert q_chk.imbalance <= 1.1 + 1e-9
        assert chk.metadata["chunk_size"] == 64

    def test_deterministic(self, instance):
        cfg = HyperPRAWConfig(record_history=False, chunk_size=50)
        a = HyperPRAW(cfg).partition(instance, 6)
        b = HyperPRAW(cfg).partition(instance, 6)
        assert np.array_equal(a.assignment, b.assignment)

    def test_state_consistency_after_chunked_pass(self, instance):
        from repro.core.state import StreamState
        from repro.engine import (
            DenseKernelState,
            HyperPRAWScorer,
            InMemorySource,
            pass_kernel,
        )

        p = 5
        init = np.arange(instance.num_vertices, dtype=np.int64) % p
        state = StreamState(instance, p, init)
        pass_kernel(
            InMemorySource(instance, block_size=37).blocks(),
            DenseKernelState.from_stream_state(state),
            HyperPRAWScorer(uniform_cost_matrix(p), 1.0, state.expected_loads),
            state.assignment,
            restream=True,
            score_mode="chunk",
        )
        state.consistency_check()

    def test_shuffled_order_supported(self, instance):
        cfg = HyperPRAWConfig(
            record_history=False, chunk_size=32, stream_order="shuffled"
        )
        r = HyperPRAW(cfg).partition(instance, 4, seed=3)
        assert (r.assignment >= 0).all()
        state_imbalance = r.metadata["final_pc_cost"]
        assert np.isfinite(state_imbalance)

    def test_config_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            HyperPRAWConfig(chunk_size=0)


class TestShardedStreamer:
    """Parallel sharded streaming: shard -> merge -> boundary restream."""

    def test_workers1_matches_buffered_exactly(self, instance):
        """One shard == the base partitioner, assignment for assignment."""
        from repro.streaming import ShardedStreamer

        cfg = HyperPRAWConfig(record_history=False)
        ref = BufferedRestreamer(cfg, buffer_size=60).partition(instance, 4)
        sharded = ShardedStreamer(
            BufferedRestreamer(cfg, buffer_size=60), workers=1
        ).partition(instance, 4)
        assert np.array_equal(ref.assignment, sharded.assignment)
        assert sharded.metadata["boundary_edges"] == 0

    def test_workers1_matches_buffered_on_edge_weighted_graph(self, instance):
        """Shard workers must monitor the *weighted* PC cost, or the
        refinement rollback diverges from the base partitioner."""
        from repro.hypergraph.model import Hypergraph
        from repro.streaming import ShardedStreamer

        rng = np.random.default_rng(5)
        weighted = Hypergraph(
            instance.num_vertices,
            [edge.tolist() for edge in instance.iter_edges()],
            edge_weights=rng.integers(1, 50, instance.num_edges).astype(float),
            name="weighted",
        )
        cfg = HyperPRAWConfig(record_history=False)
        ref = BufferedRestreamer(cfg, buffer_size=40).partition(weighted, 4)
        sharded = ShardedStreamer(
            BufferedRestreamer(cfg, buffer_size=40), workers=1
        ).partition(weighted, 4)
        assert np.array_equal(ref.assignment, sharded.assignment)

    def test_workers1_matches_onepass_exactly(self, instance):
        from repro.streaming import ShardedStreamer

        ref = OnePassStreamer(chunk_size=64).partition(instance, 4)
        sharded = ShardedStreamer(
            OnePassStreamer(chunk_size=64), workers=1, chunk_size=64
        ).partition(instance, 4)
        assert np.array_equal(ref.assignment, sharded.assignment)

    def test_multiworker_quality_and_balance(self, mesh_instance):
        from repro.streaming import ShardedStreamer

        p = 4
        C = uniform_cost_matrix(p)
        cfg = HyperPRAWConfig(record_history=False, max_iterations=40)
        base = lambda: BufferedRestreamer(
            cfg, buffer_size=mesh_instance.num_vertices // 4
        )
        single = ShardedStreamer(base(), workers=1, chunk_size=64).partition(
            mesh_instance, p
        )
        multi = ShardedStreamer(base(), workers=2, chunk_size=64).partition(
            mesh_instance, p
        )
        q1 = evaluate_partition(mesh_instance, single.assignment, p, C)
        q2 = evaluate_partition(mesh_instance, multi.assignment, p, C)
        assert (multi.assignment >= 0).all()
        assert multi.metadata["shards"] == 2
        assert multi.metadata["boundary_edges"] > 0
        assert q2.imbalance <= 1.25 + 1e-9
        # acceptance: multi-worker cut within 5% of single-worker
        assert q2.hyperedge_cut <= q1.hyperedge_cut * 1.05

    def test_multiworker_deterministic_for_fixed_seed(self, instance):
        from repro.streaming import ShardedStreamer

        cfg = HyperPRAWConfig(record_history=False)
        runs = [
            ShardedStreamer(
                BufferedRestreamer(cfg, buffer_size=60), workers=2, chunk_size=32
            )
            .partition(instance, 4, seed=11)
            .assignment
            for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])

    def test_workers_knob_on_partitioners_and_config(self, instance):
        """workers surfaces through ctor args and HyperPRAWConfig."""
        r = BufferedRestreamer(
            HyperPRAWConfig(record_history=False), buffer_size=60, workers=2
        ).partition(instance, 4)
        assert r.algorithm == "stream-sharded"
        assert r.metadata["workers"] == 2
        r = BufferedRestreamer(
            HyperPRAWConfig(record_history=False, workers=2), buffer_size=60
        ).partition(instance, 4)
        assert r.algorithm == "stream-sharded"
        r = OnePassStreamer(workers=2).partition(instance, 4)
        assert r.algorithm == "stream-sharded"
        assert r.metadata["base_algorithm"] == "stream-onepass"

    def test_sharded_from_disk(self, instance, tmp_path):
        from repro.streaming import ShardedStreamer

        path = tmp_path / "h.hgr"
        write_hmetis(instance, path)
        cfg = HyperPRAWConfig(record_history=False, max_iterations=20)
        with stream_hmetis(path, chunk_size=32) as stream:
            r = ShardedStreamer(
                BufferedRestreamer(cfg, buffer_size=50), workers=3
            ).partition_stream(stream, 4)
        assert (r.assignment >= 0).all()
        assert r.metadata["shards"] == 3

    def test_rejects_bad_params(self):
        from repro.streaming import ShardedStreamer
        from repro.partitioning.simple import RandomPartitioner

        with pytest.raises(ValueError, match="workers"):
            ShardedStreamer(workers=0)
        with pytest.raises(ValueError, match="workers"):
            OnePassStreamer(workers=0)
        with pytest.raises(ValueError, match="workers"):
            HyperPRAWConfig(workers=0)
        with pytest.raises(TypeError, match="sharding contract"):
            ShardedStreamer(RandomPartitioner())


class TestBenchScenario:
    def test_compare_streaming_report(self, instance):
        from repro.bench.streaming import compare_streaming

        report = compare_streaming(
            instance,
            4,
            chunk_size=64,
            buffer_fractions=(0.25, 1.0),
            max_iterations=30,
        )
        # anchor + chunked anchor + onepass + 2 buffered + 2 chunked-buffered
        assert len(report.records) == 7
        # full-buffer restreaming must match the anchor exactly
        assert report.gap("stream-buffered (1|V|)") == pytest.approx(0.0)
        # ... and full-buffer *chunked* restreaming must match the
        # chunked in-memory row exactly (chunk scores freeze at block
        # start, so buffering the whole window changes nothing)
        chunked_rows = {r.algorithm: r for r in report.records}
        assert (
            chunked_rows["stream-buffered-chunk (1|V|)"].quality.pc_cost
            == chunked_rows[f"hyperpraw (chunk={64})"].quality.pc_cost
        )
        # acceptance: streamed gap <= 25% on the synthetic suite
        assert report.gap("stream-onepass") <= 0.25
        assert report.gap("stream-buffered (0.25|V|)") <= 0.25
        rendered = report.render()
        assert "streamed vs in-memory" in rendered
        assert "stream-onepass" in rendered
        assert "stream-buffered-chunk" in rendered

    def test_cli_stream_command(self, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "stream",
                "--nodes",
                "1",
                "--instances",
                "sparsine",
                "--scale",
                "0.1",
                "--chunk-size",
                "32",
                "--buffer-fractions",
                "1.0",
                "--max-iterations",
                "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "streamed vs in-memory" in out
        assert "stream-buffered" in out

    def test_cli_stream_file_input(self, capsys, tmp_path, instance):
        from repro.experiments.cli import main

        path = tmp_path / "inst.hgr"
        write_hmetis(instance, path)
        rc = main(
            [
                "stream",
                "--nodes",
                "1",
                "--stream-input",
                str(path),
                "--chunk-size",
                "64",
                "--max-iterations",
                "10",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream-onepass" in out
        assert "peak resident pins" in out
