"""Tests for the simulated ring profiler (mpiGraph stand-in)."""

import numpy as np
import pytest

from repro.architecture.bandwidth import archer_like_bandwidth
from repro.architecture.profiling import RingProfiler
from repro.architecture.topology import archer_like_topology
from repro.simcomm.network import LinkModel


@pytest.fixture
def ground_truth():
    topo = archer_like_topology(num_nodes=1)
    bw, lat = archer_like_bandwidth(topo).matrices(seed=3)
    return LinkModel(bw, lat)


class TestRingProfiler:
    def test_noise_free_measurement_is_accurate(self, ground_truth):
        prof = RingProfiler(ground_truth, measurement_noise=0.0, repeats=1).profile(
            symmetrize=False
        )
        # With no noise, the only bias is the latency term; with 1MB
        # messages it is far below 1%.
        assert prof.relative_error(ground_truth.bandwidth_mbs) < 0.01

    def test_noisy_measurement_converges_with_repeats(self, ground_truth):
        noisy = RingProfiler(
            ground_truth, measurement_noise=0.2, repeats=1
        ).profile(seed=1)
        averaged = RingProfiler(
            ground_truth, measurement_noise=0.2, repeats=16
        ).profile(seed=1)
        assert averaged.relative_error(
            ground_truth.bandwidth_mbs
        ) < noisy.relative_error(ground_truth.bandwidth_mbs)

    def test_covers_every_pair(self, ground_truth):
        prof = RingProfiler(ground_truth, repeats=1).profile(seed=0)
        n = ground_truth.num_ranks
        off = ~np.eye(n, dtype=bool)
        assert (prof.bandwidth_mbs[off] > 0).all()

    def test_symmetrized(self, ground_truth):
        prof = RingProfiler(ground_truth, repeats=1).profile(seed=0, symmetrize=True)
        assert np.allclose(prof.bandwidth_mbs, prof.bandwidth_mbs.T)

    def test_deterministic_given_seed(self, ground_truth):
        a = RingProfiler(ground_truth, repeats=2).profile(seed=9)
        b = RingProfiler(ground_truth, repeats=2).profile(seed=9)
        assert np.array_equal(a.bandwidth_mbs, b.bandwidth_mbs)

    def test_profiling_takes_simulated_time(self, ground_truth):
        prof = RingProfiler(ground_truth, repeats=2).profile(seed=0)
        assert prof.profiling_time_s > 0

    def test_cost_matrix_from_profile(self, ground_truth):
        cost = RingProfiler(ground_truth, repeats=2).profile(seed=0).cost_matrix()
        n = ground_truth.num_ranks
        assert cost.shape == (n, n)
        assert np.all(np.diag(cost) == 0)

    def test_measured_cost_close_to_true_cost(self, ground_truth):
        """The aware variant consumes the measured matrix; it must rank
        links like the ground truth does."""
        from repro.architecture.cost import cost_matrix_from_bandwidth

        prof = RingProfiler(ground_truth, repeats=3, measurement_noise=0.02).profile(seed=4)
        true_cost = cost_matrix_from_bandwidth(ground_truth.bandwidth_mbs)
        measured_cost = prof.cost_matrix()
        n = ground_truth.num_ranks
        off = ~np.eye(n, dtype=bool)
        corr = np.corrcoef(true_cost[off], measured_cost[off])[0, 1]
        assert corr > 0.95

    def test_parameter_validation(self, ground_truth):
        with pytest.raises(ValueError):
            RingProfiler(ground_truth, message_bytes=0)
        with pytest.raises(ValueError):
            RingProfiler(ground_truth, repeats=0)
        with pytest.raises(ValueError):
            RingProfiler(ground_truth, measurement_noise=-0.1)
